#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "common/logging.h"

namespace flashgen::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

enum class Phase : std::uint8_t { kSpan, kCounter, kInstant };

struct Event {
  const char* name;
  const char* cat;     // null for counters
  std::uint64_t t0;    // ns; span start / sample time
  std::uint64_t t1;    // ns; span end (spans only)
  double value;        // counters only
  Phase phase;
};

// Per-thread event sink. The owning thread appends under `mutex`; the flusher
// drains under the same mutex, so collection can overlap a write_json (events
// recorded during the drain land in the next session or are dropped at reset).
// Buffers are owned by the registry and live until reset_for_test(), so a
// thread exiting mid-session loses nothing.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::size_t dropped = 0;
  int tid = 0;
};

// Bounds per-thread memory: 1M events x 48B ~= 48MB worst case per thread.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::string path;       // output path of the active/most recent session
  std::uint64_t t_base = 0;  // session start; event timestamps are offsets
  bool atexit_registered = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may record at exit
  return *r;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    raw->tid = static_cast<int>(reg.buffers.size()) + 1;
    reg.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

void append(const Event& e) {
  ThreadBuffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(e);
}

void json_escaped(std::FILE* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      std::fputc('\\', out);
      std::fputc(c, out);
    } else if (c < 0x20) {
      std::fprintf(out, "\\u%04x", c);
    } else {
      std::fputc(c, out);
    }
  }
}

/// Writes every buffered event as one chrome://tracing JSON object per line.
/// Returns the number of events written, or 0 with a warning on I/O failure.
std::size_t write_json(Registry& reg) {
  std::FILE* out = std::fopen(reg.path.c_str(), "w");
  if (out == nullptr) {
    FG_LOG(Warn) << "trace: cannot open " << reg.path << " for writing; trace discarded";
    return 0;
  }
  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n", out);
  std::fprintf(out, "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
                    "\"args\": {\"name\": \"flashgen\"}}");
  std::size_t written = 0;
  std::size_t dropped = 0;
  std::vector<Event> drained;
  for (auto& buf : reg.buffers) {
    {
      std::lock_guard<std::mutex> lock(buf->mutex);
      drained.swap(buf->events);
      dropped += buf->dropped;
      buf->dropped = 0;
    }
    for (const Event& e : drained) {
      // Offset from session start, in fractional microseconds. Events that
      // straddled a stop()/start() boundary clamp to 0 instead of wrapping.
      const double ts =
          e.t0 >= reg.t_base ? static_cast<double>(e.t0 - reg.t_base) / 1000.0 : 0.0;
      std::fputs(",\n{\"name\": \"", out);
      json_escaped(out, e.name);
      std::fputs("\", ", out);
      switch (e.phase) {
        case Phase::kSpan:
          std::fputs("\"cat\": \"", out);
          json_escaped(out, e.cat);
          std::fprintf(out, "\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, ", ts,
                       static_cast<double>(e.t1 - e.t0) / 1000.0);
          break;
        case Phase::kCounter:
          std::fprintf(out, "\"ph\": \"C\", \"ts\": %.3f, \"args\": {\"value\": %.9g}, ", ts,
                       e.value);
          break;
        case Phase::kInstant:
          std::fputs("\"cat\": \"", out);
          json_escaped(out, e.cat);
          std::fprintf(out, "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, ", ts);
          break;
      }
      std::fprintf(out, "\"pid\": 1, \"tid\": %d}", buf->tid);
      ++written;
    }
    drained.clear();
  }
  std::fputs("\n]}\n", out);
  const bool ok = std::fclose(out) == 0;
  if (!ok) FG_LOG(Warn) << "trace: write to " << reg.path << " failed";
  if (dropped > 0) {
    FG_LOG(Warn) << "trace: dropped " << dropped
                 << " events (per-thread buffer capacity reached)";
  }
  return ok ? written : 0;
}

void flush_at_exit() {
  if (g_enabled.load(std::memory_order_relaxed)) stop();
}

}  // namespace

void record_span(const char* name, const char* cat, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  append(Event{name, cat, t0_ns, t1_ns, 0.0, Phase::kSpan});
}

void record_counter(const char* name, double value) {
  append(Event{name, nullptr, now_ns(), 0, value, Phase::kCounter});
}

void record_instant(const char* name, const char* cat) {
  append(Event{name, cat, now_ns(), 0, 0.0, Phase::kInstant});
}

namespace {

// Reads FLASHGEN_TRACE once at static-init time so binaries trace without any
// code change; the matching flush runs from atexit.
struct EnvInit {
  EnvInit() {
    if (const char* path = std::getenv("FLASHGEN_TRACE"); path != nullptr && *path != '\0') {
      start(path);
    }
  }
} env_init;

}  // namespace
}  // namespace detail

void start(const std::string& path) {
  FG_CHECK(!path.empty(), "trace: output path must be non-empty");
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  FG_CHECK(!detail::g_enabled.load(std::memory_order_relaxed),
           "trace: session already active (writing " << reg.path << ")");
  reg.path = path;
  reg.t_base = detail::now_ns();
  if (!reg.atexit_registered) {
    reg.atexit_registered = true;
    std::atexit(detail::flush_at_exit);
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

std::size_t stop() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!detail::g_enabled.exchange(false, std::memory_order_relaxed)) return 0;
  return detail::write_json(reg);
}

std::string active_path() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return detail::g_enabled.load(std::memory_order_relaxed) ? reg.path : std::string();
}

std::size_t event_count() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t n = 0;
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

void reset_for_test() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  detail::g_enabled.store(false, std::memory_order_relaxed);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
    buf->dropped = 0;
  }
}

}  // namespace flashgen::trace
