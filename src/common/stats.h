// Process-wide named counters and gauges, plus a streaming Summary.
//
// Counters are monotonic (requests served, cells simulated); gauges hold the
// latest sample of a level (current queue depth, learning rate). Both are
// lock-free on the update path and cheap enough to leave in hot loops:
//
//   static stats::Counter& reqs = stats::counter("serve.requests");
//   reqs.add();
//
// `stats::to_json()` snapshots every registered counter and gauge — the
// serve-side metrics endpoint embeds it so one scrape covers the whole stack.
// Registered objects live for the process lifetime; references stay valid.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace flashgen::stats {

/// Monotonic counter. Thread-safe.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset_for_test() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge. Thread-safe.
class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  std::atomic<std::uint64_t> bits_{0};  // IEEE-754 bit pattern of the value
};

/// Streaming count/sum/min/max summary. NOT thread-safe: callers guard it
/// (ServeMetrics holds its summaries under the metrics mutex). All accessors
/// are finite for every count, including 0 and 1 — mean()/min()/max() of an
/// empty summary are 0, never NaN.
class Summary {
 public:
  void record(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the counter/gauge registered under `name`, creating it on first
/// use. Names are dot-separated lowercase paths, e.g. "flash.cells_simulated".
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);

/// JSON object {"counters": {...}, "gauges": {...}}, keys sorted. Non-finite
/// gauge values (never produced by the library itself, but set() is public)
/// are serialized as 0 so the output always parses.
std::string to_json();

/// Zeroes every registered counter and gauge (test hook).
void reset_for_test();

}  // namespace flashgen::stats
