// Deterministic fault injection for robustness testing.
//
// Named injection points are planted at failure-prone seams (checkpoint I/O,
// socket read/write, loss computation) and stay dormant in production: every
// point costs one relaxed atomic load when no faults are configured, the same
// zero-overhead contract as trace.h. Faults are armed either by the
// FLASHGEN_FAULTS environment variable or programmatically:
//
//   FLASHGEN_FAULTS=checkpoint_write:0.1,socket_reset:0.05,train_kill:@7
//
//   faultinject::configure("nan_poison:@2", /*seed=*/42);
//   if (FG_FAULT("nan_poison")) { /* inject the failure */ }
//
// Two trigger modes per point:
//   name:p   - probability p in [0, 1]; whether call i fires is a pure
//              function of (seed, point name, i) via Rng::from_stream, so a
//              run with the same per-point call sequence replays the same
//              fault pattern (counter-seeded determinism).
//   name:@k  - fires exactly on the k-th evaluation (0-based) of the point;
//              the mode kill-and-resume tests use to crash at a chosen step.
//
// Firing decisions and counters are tracked per point and queryable
// (calls()/fired()) so tests can assert a scenario actually executed.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace flashgen::faultinject {

namespace detail {
extern std::atomic<bool> g_enabled;

bool should_fire(const char* point);
}  // namespace detail

/// True when any injection point is armed. Instrumentation branches on this
/// before touching the registry.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// True when the named point should fail this call. Advances the point's call
/// counter; unknown points never fire.
inline bool fire(const char* point) { return enabled() && detail::should_fire(point); }

/// Arms the registry from a spec string ("a:0.5,b:@3"). Replaces any previous
/// configuration; an empty spec disarms everything. Throws flashgen::Error on
/// a malformed spec. `seed` feeds the per-point random streams.
void configure(const std::string& spec, std::uint64_t seed = 0);

/// Disarms all points and discards their counters (test hook).
void clear();

/// Times the named point has been evaluated / has fired since configure().
std::uint64_t calls(const std::string& point);
std::uint64_t fired(const std::string& point);

}  // namespace flashgen::faultinject

/// Injection point: true when the configured fault should fire here.
#define FG_FAULT(point) (::flashgen::faultinject::fire(point))
