// Minimal JSON DOM parser — just enough to validate and inspect the JSON the
// library itself emits (trace files, serve metrics, stats snapshots).
//
// Strict on structure (balanced brackets, quoted keys, no trailing commas)
// and strict on numbers: "NaN"/"Infinity" and friends are parse errors, which
// is exactly the property the metrics tests pin down. Not a general-purpose
// parser: no \uXXXX decoding (escapes are validated and kept verbatim), and
// the whole document is materialized.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace flashgen::common {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  /// FG_CHECKs the type.
  double number() const;
  const std::string& string() const;
  bool boolean() const;
  const JsonArray& array() const;
  const JsonObject& object() const;

  /// Object member lookup; FG_CHECKs that this is an object holding `key`.
  const JsonValue& at(const std::string& key) const;
  /// True when this is an object with member `key`.
  bool has(const std::string& key) const;

 private:
  friend JsonValue json_parse(const std::string&);
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses `text` as one JSON document. Throws flashgen::Error (with offset
/// context) on any syntax error, trailing garbage, or non-finite number.
JsonValue json_parse(const std::string& text);

}  // namespace flashgen::common
