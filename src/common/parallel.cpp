#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace flashgen::common {

namespace {

int env_default_threads() {
  if (const char* env = std::getenv("FLASHGEN_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

// One parallel region in flight. Workers pull chunk indices from `next` until
// the partition is exhausted; the submitting thread participates too, then
// blocks until `done` reaches `chunks`.
struct Job {
  const std::function<void(std::int64_t, std::int64_t, std::int64_t)>* fn = nullptr;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t chunks = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::exception_ptr error;  // first captured exception, guarded by error_mutex
  std::mutex error_mutex;
};

thread_local bool tls_in_parallel = false;

class Pool {
 public:
  static Pool& instance() {
    // Intentionally leaked: a function-local static would be destroyed at
    // exit, and destroying a condition variable that detached workers are
    // blocked on hangs the process (glibc's pthread_cond_destroy waits for
    // waiters). The pool must outlive every worker.
    static Pool* pool = new Pool();
    return *pool;
  }

  int configured_threads() {
    const int n = override_threads_.load(std::memory_order_relaxed);
    return n >= 1 ? n : env_threads_;
  }

  void set_threads(int n) { override_threads_.store(n, std::memory_order_relaxed); }

  void run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
    const std::int64_t chunks = partition_chunks(begin, end, grain);
    if (chunks == 0) return;
    const int threads = configured_threads();
    if (chunks == 1 || threads == 1 || tls_in_parallel) {
      run_serial(begin, end, grain, chunks, fn);
      return;
    }
    // One top-level region at a time: the pool has a single job slot. Nested
    // regions never get here (they degrade to serial above), so this cannot
    // self-deadlock.
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    ensure_workers(threads - 1);

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->chunks = chunks;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++job_epoch_;
    }
    wake_.notify_all();

    work_on(*job);

    {
      // Wait for chunks claimed by workers to drain.
      std::unique_lock<std::mutex> lock(mutex_);
      finished_.wait(lock, [&] { return job->done.load() == job->chunks; });
      if (job_ == job) job_ = nullptr;
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  Pool() : env_threads_(env_default_threads()) {}
  // Workers are detached and never torn down: the pool lives until process
  // exit, matching the lazily-initialized singleton contract and avoiding
  // static-destruction-order races with user code running in workers.

  // Serial fallback. Deliberately does not set tls_in_parallel: a
  // single-chunk outer loop (e.g. a batch-of-one conv) must not suppress
  // parallelism in the kernels it calls.
  static void run_serial(std::int64_t begin, std::int64_t end, std::int64_t grain,
                         std::int64_t chunks,
                         const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
    for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
      const std::int64_t b = begin + chunk * grain;
      const std::int64_t e = std::min(end, b + grain);
      fn(chunk, b, e);
    }
  }

  void ensure_workers(int wanted) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(started_workers_) < wanted) {
      std::thread([this] { worker_loop(); }).detach();
      ++started_workers_;
    }
  }

  void work_on(Job& job) {
    const bool saved = tls_in_parallel;
    tls_in_parallel = true;
    for (;;) {
      const std::int64_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.chunks) break;
      const std::int64_t b = job.begin + chunk * job.grain;
      const std::int64_t e = std::min(job.end, b + job.grain);
      try {
        (*job.fn)(chunk, b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
        std::lock_guard<std::mutex> lock(mutex_);
        finished_.notify_all();
      }
    }
    tls_in_parallel = saved;
  }

  void worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return job_ != nullptr && job_epoch_ != seen_epoch; });
        job = job_;
        seen_epoch = job_epoch_;
      }
      if (job->next.load(std::memory_order_relaxed) < job->chunks) work_on(*job);
    }
  }

  const int env_threads_;
  std::atomic<int> override_threads_{0};

  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable finished_;
  std::shared_ptr<Job> job_;
  std::uint64_t job_epoch_ = 0;
  unsigned started_workers_ = 0;
};

}  // namespace

int num_threads() { return Pool::instance().configured_threads(); }

void set_num_threads(int n) { Pool::instance().set_threads(n); }

bool in_parallel_region() { return tls_in_parallel; }

SerialRegionGuard::SerialRegionGuard() : saved_(tls_in_parallel) { tls_in_parallel = true; }

SerialRegionGuard::~SerialRegionGuard() { tls_in_parallel = saved_; }

std::int64_t partition_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain) {
  FG_CHECK(grain > 0, "parallel: grain must be positive, got " << grain);
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  Pool::instance().run(begin, end, grain,
                       [&fn](std::int64_t, std::int64_t b, std::int64_t e) { fn(b, e); });
}

void parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
  Pool::instance().run(begin, end, grain, fn);
}

double parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                       double init,
                       const std::function<double(std::int64_t, std::int64_t)>& partial,
                       const std::function<double(double, double)>& combine) {
  const std::int64_t chunks = partition_chunks(begin, end, grain);
  if (chunks == 0) return init;
  std::vector<double> partials(static_cast<std::size_t>(chunks));
  Pool::instance().run(begin, end, grain,
                       [&](std::int64_t chunk, std::int64_t b, std::int64_t e) {
                         partials[static_cast<std::size_t>(chunk)] = partial(b, e);
                       });
  double acc = init;
  for (double p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace flashgen::common
