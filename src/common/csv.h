// Tiny CSV writer used by the bench harness to dump figure/table series for
// external plotting. Values are written with full float precision; strings
// containing separators are quoted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace flashgen {

/// Streams rows to a CSV file. Throws flashgen::Error if the file can't be
/// opened. The file is flushed and closed on destruction.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Writes one row; each cell is escaped if needed.
  void row(const std::vector<std::string>& cells);

  /// Convenience: header then typed numeric rows.
  void numeric_row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& cell);
  std::string path_;
  std::ofstream out_;
};

}  // namespace flashgen
