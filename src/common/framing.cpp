#include "common/framing.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/faultinject.h"

namespace flashgen::framing {

bool IoError::timed_out() const {
  return error_code_ == EAGAIN || error_code_ == EWOULDBLOCK || error_code_ == ETIMEDOUT;
}

namespace {
[[noreturn]] void throw_io(const char* op, int err) {
  std::ostringstream os;
  os << "protocol: " << op << " failed: " << std::strerror(err);
  throw IoError(os.str(), err);
}

// Loops until every byte is on the wire: retries syscalls interrupted by
// signals (EINTR) and resumes after short writes, so a frame can be delivered
// across any number of partial transfers. MSG_NOSIGNAL turns a write to a
// peer that already closed into an EPIPE IoError instead of the default
// SIGPIPE, which would kill the whole process because no handler is
// installed.
void write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw_io("write", n < 0 ? errno : EPIPE);
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Returns bytes read; short only on EOF.
std::size_t read_all(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) throw_io("read", errno);
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  return got;
}
}  // namespace

void write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  if (FG_FAULT("socket_reset")) {
    ::shutdown(fd, SHUT_RDWR);
    FG_CHECK(false, "fault injected: socket_reset (write_frame)");
  }
  FG_CHECK(payload.size() <= kMaxFrameBytes, "protocol: frame too large: " << payload.size());
  std::uint8_t header[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  write_all(fd, header, sizeof(header));
  write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  if (FG_FAULT("socket_reset")) {
    ::shutdown(fd, SHUT_RDWR);
    FG_CHECK(false, "fault injected: socket_reset (read_frame)");
  }
  std::uint8_t header[4];
  const std::size_t got = read_all(fd, header, sizeof(header));
  if (got == 0) return false;  // clean EOF between frames
  FG_CHECK(got == sizeof(header), "protocol: truncated frame header");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  FG_CHECK(len <= kMaxFrameBytes, "protocol: frame too large: " << len);
  // Grow the buffer in bounded chunks as bytes actually arrive, so a hostile
  // length prefix followed by a dropped connection costs at most one chunk of
  // allocation, not the full claimed frame.
  constexpr std::size_t kChunkBytes = 1u << 20;
  payload.clear();
  payload.shrink_to_fit();
  std::size_t have = 0;
  while (have < len) {
    const std::size_t want = std::min<std::size_t>(kChunkBytes, len - have);
    payload.resize(have + want);
    const std::size_t n = read_all(fd, payload.data() + have, want);
    have += n;
    if (n < want) {
      payload.resize(have);
      FG_CHECK(false, "protocol: truncated frame body (" << have << "/" << len << " bytes)");
    }
  }
  return true;
}

std::vector<std::uint8_t> encode_frame(const std::vector<std::uint8_t>& payload) {
  FG_CHECK(payload.size() <= kMaxFrameBytes, "protocol: frame too large: " << payload.size());
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void FrameDecoder::feed(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
  // Validate the length prefix as soon as it is complete, not when the frame
  // is: a hostile prefix must be rejected before its claimed body accrues.
  if (buffered() >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= static_cast<std::uint32_t>(buffer_[consumed_ + static_cast<std::size_t>(i)])
             << (8 * i);
    FG_CHECK(len <= kMaxFrameBytes, "protocol: frame too large: " << len);
  }
}

bool FrameDecoder::next(std::vector<std::uint8_t>& payload) {
  if (buffered() < 4) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(buffer_[consumed_ + static_cast<std::size_t>(i)]) << (8 * i);
  FG_CHECK(len <= kMaxFrameBytes, "protocol: frame too large: " << len);
  if (buffered() < 4 + static_cast<std::size_t>(len)) {
    // feed() validated the *next* prefix only; with several frames buffered a
    // later hostile prefix is caught here once it reaches the front.
    return false;
  }
  const auto body = buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4);
  payload.assign(body, body + static_cast<std::ptrdiff_t>(len));
  consumed_ += 4 + static_cast<std::size_t>(len);
  // Reclaim consumed bytes once they dominate the buffer, amortizing the
  // memmove to O(1) per byte.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return true;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_io("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) throw_io("fcntl(F_SETFL)", errno);
}

ReadStatus read_some(int fd, FrameDecoder& decoder) {
  // Bounded per call so one firehose connection cannot monopolize the event
  // loop; level-triggered epoll re-reports the rest immediately.
  constexpr std::size_t kMaxPerCall = 256u << 10;
  std::uint8_t chunk[16384];
  std::size_t total = 0;
  while (total < kMaxPerCall) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return total > 0 ? ReadStatus::kOk : ReadStatus::kWouldBlock;
    if (n < 0) throw_io("read", errno);
    if (n == 0) return total > 0 ? ReadStatus::kOk : ReadStatus::kEof;
    decoder.feed(chunk, static_cast<std::size_t>(n));
    total += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < sizeof(chunk)) break;  // drained for now
  }
  return ReadStatus::kOk;
}

std::size_t write_some(int fd, const std::uint8_t* data, std::size_t size) {
  while (true) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
    if (n < 0) throw_io("write", errno);
    return static_cast<std::size_t>(n);
  }
}

void set_socket_timeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    throw_io("setsockopt(SO_RCVTIMEO)", errno);
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0)
    throw_io("setsockopt(SO_SNDTIMEO)", errno);
}

}  // namespace flashgen::framing
