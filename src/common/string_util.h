// Small string helpers shared across modules (no locale dependence).
#pragma once

#include <string>
#include <vector>

namespace flashgen {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& text);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

}  // namespace flashgen
