#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace flashgen {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

LogLine::LogLine(LogLevel level)
    : level_(level), enabled_(static_cast<int>(level) >= static_cast<int>(log_level())) {}

LogLine::~LogLine() {
  if (!enabled_) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double secs =
      std::chrono::duration<double>(clock::now() - start).count();
  std::fprintf(stderr, "[%8.2fs %s] %s\n", secs, tag(level_), os_.str().c_str());
}

}  // namespace detail
}  // namespace flashgen
