#include "common/faultinject.h"

#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <string_view>

#include "common/error.h"
#include "common/rng.h"

namespace flashgen::faultinject {

namespace {

struct Site {
  double probability = -1.0;  // used when trigger_at < 0
  std::int64_t trigger_at = -1;
  std::uint64_t calls = 0;
  std::uint64_t fired = 0;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

// Heterogeneous comparator so should_fire can look points up by const char*
// without constructing a std::string per call.
std::map<std::string, Site, std::less<>>& registry() {
  static std::map<std::string, Site, std::less<>> sites;
  return sites;
}

std::uint64_t g_seed = 0;

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Arms the registry from FLASHGEN_FAULTS at process start, before any thread
// can reach an injection point.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("FLASHGEN_FAULTS");
    if (spec == nullptr || spec[0] == '\0') return;
    std::uint64_t seed = 0;
    if (const char* s = std::getenv("FLASHGEN_FAULTS_SEED"); s != nullptr)
      seed = std::strtoull(s, nullptr, 10);
    configure(spec, seed);
  }
} g_env_init;

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

bool should_fire(const char* point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(std::string_view(point));
  if (it == registry().end()) return false;
  Site& site = it->second;
  const std::uint64_t call = site.calls++;
  bool fires;
  if (site.trigger_at >= 0) {
    fires = call == static_cast<std::uint64_t>(site.trigger_at);
  } else {
    // Pure function of (seed, point, call index): the same call sequence
    // replays the same fault pattern regardless of wall clock or threads.
    fires = Rng::from_stream(g_seed ^ fnv1a(point), call).uniform() < site.probability;
  }
  if (fires) ++site.fired;
  return fires;
}

}  // namespace detail

void configure(const std::string& spec, std::uint64_t seed) {
  std::map<std::string, Site, std::less<>> sites;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    FG_CHECK(colon != std::string::npos && colon > 0 && colon + 1 < entry.size(),
             "faultinject: malformed entry '" << entry << "' (want name:prob or name:@k)");
    const std::string name = entry.substr(0, colon);
    const std::string value = entry.substr(colon + 1);
    Site site;
    std::size_t parsed = 0;
    try {
      if (value[0] == '@') {
        site.trigger_at = std::stoll(value.substr(1), &parsed);
        ++parsed;  // account for the '@'
      } else {
        site.probability = std::stod(value, &parsed);
      }
    } catch (const std::exception&) {
      parsed = 0;
    }
    FG_CHECK(parsed == value.size(), "faultinject: unparsable value in '" << entry << "'");
    if (site.trigger_at < 0) {
      FG_CHECK(site.probability >= 0.0 && site.probability <= 1.0,
               "faultinject: probability out of [0, 1] in '" << entry << "'");
    }
    sites.emplace(name, site);
  }
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry() = std::move(sites);
  g_seed = seed;
  detail::g_enabled.store(!registry().empty(), std::memory_order_relaxed);
}

void clear() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t calls(const std::string& point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.calls;
}

std::uint64_t fired(const std::string& point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.fired;
}

}  // namespace flashgen::faultinject
