// Zero-overhead-when-disabled tracing: RAII scoped spans, counters, and a
// chrome://tracing-compatible JSON exporter.
//
// Tracing is off by default; every instrumentation point costs one relaxed
// atomic load. It is switched on either by the FLASHGEN_TRACE environment
// variable (value = output path, flushed at process exit) or programmatically:
//
//   trace::start("out.json");
//   { FG_TRACE_SPAN("gemm", "tensor"); sgemm(...); }
//   trace::counter("loss.g", 0.31);
//   trace::stop();  // writes out.json
//
// Load the emitted file in chrome://tracing (or https://ui.perfetto.dev).
//
// Span/counter names must be string literals (or otherwise outlive the trace
// session): only the pointer is recorded on the hot path. Events are buffered
// per thread behind a per-buffer mutex, so recording never serializes threads
// against each other and never perturbs RNG streams or floating-point math —
// traced and untraced runs produce bit-identical results.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace flashgen::trace {

namespace detail {
extern std::atomic<bool> g_enabled;

std::uint64_t now_ns();
void record_span(const char* name, const char* cat, std::uint64_t t0_ns, std::uint64_t t1_ns);
void record_counter(const char* name, double value);
void record_instant(const char* name, const char* cat);
}  // namespace detail

/// True when a trace session is collecting. Instrumentation points branch on
/// this before touching the clock or any buffer.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Begins collecting; `stop()` (or process exit) writes the JSON to `path`.
/// Starting while already active is an error (FG_CHECK).
void start(const std::string& path);

/// Stops collecting and writes the trace to the path given to start().
/// Returns the number of events written. No-op (returns 0) when inactive.
std::size_t stop();

/// Path of the active session, or empty string when inactive.
std::string active_path();

/// Events currently buffered across all threads (test/diagnostic hook).
std::size_t event_count();

/// Stops without writing and discards all buffered events (test hook).
void reset_for_test();

/// RAII duration span ("ph":"X"). Records only if tracing was enabled at
/// construction time; a span that straddles stop() is dropped.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "flashgen") {
    if (enabled()) {
      name_ = name;
      cat_ = cat;
      t0_ = detail::now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) detail::record_span(name_, cat_, t0_, detail::now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t t0_ = 0;
};

/// Counter sample ("ph":"C"): plotted as a stacked time series by the viewer.
inline void counter(const char* name, double value) {
  if (enabled()) detail::record_counter(name, value);
}

/// Instant event ("ph":"i"): a point-in-time marker.
inline void instant(const char* name, const char* cat = "flashgen") {
  if (enabled()) detail::record_instant(name, cat);
}

}  // namespace flashgen::trace

#define FG_TRACE_CONCAT2(a, b) a##b
#define FG_TRACE_CONCAT(a, b) FG_TRACE_CONCAT2(a, b)

/// Scoped span covering the rest of the enclosing block.
#define FG_TRACE_SPAN(name, cat) \
  ::flashgen::trace::Span FG_TRACE_CONCAT(fg_trace_span_, __LINE__)(name, cat)
