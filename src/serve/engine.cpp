#include "serve/engine.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"
#include "common/trace.h"

namespace flashgen::serve {

InferenceEngine::InferenceEngine(models::GenerativeModel& model) : model_(model) {
  model_.prepare_generation();
}

void InferenceEngine::warmup(const Tensor& pl, int rounds) {
  const auto n = static_cast<std::size_t>(pl.shape()[0]);
  std::vector<flashgen::Rng> rngs;
  for (int round = 0; round < rounds; ++round) {
    rngs.clear();
    for (std::size_t i = 0; i < n; ++i) {
      rngs.push_back(flashgen::Rng::from_stream(/*base=*/0, /*stream=*/i));
    }
    (void)sample_rows(pl, rngs);
  }
}

Tensor InferenceEngine::sample_rows(const Tensor& pl, std::span<flashgen::Rng> rngs) {
  FG_CHECK(pl.defined() && pl.shape().rank() >= 1 &&
               static_cast<std::size_t>(pl.shape()[0]) == rngs.size(),
           "InferenceEngine: " << rngs.size() << " streams for batch " << pl.shape());
  FG_TRACE_SPAN("serve.infer", "serve");
  tensor::InferenceModeGuard inference;
  Tensor out = model_.sample_rows(pl, rngs);
  ++stats_.batches;
  stats_.rows += rngs.size();
  static stats::Counter& rows_total = stats::counter("serve.rows_inferred");
  rows_total.add(rngs.size());
  return out;
}

void InferenceEngine::generate_into(const Tensor& pl, std::span<flashgen::Rng> rngs,
                                    std::span<float> out) {
  Tensor result = sample_rows(pl, rngs);
  FG_CHECK(result.data().size() == out.size(),
           "InferenceEngine: output buffer holds " << out.size() << " floats but batch needs "
                                                   << result.data().size());
  std::copy(result.data().begin(), result.data().end(), out.begin());
}

Tensor InferenceEngine::sample_rows_at(const Tensor& pl,
                                       std::span<const data::Condition> conditions,
                                       std::span<flashgen::Rng> rngs) {
  FG_CHECK(pl.defined() && pl.shape().rank() >= 1 &&
               static_cast<std::size_t>(pl.shape()[0]) == rngs.size() &&
               conditions.size() == rngs.size(),
           "InferenceEngine: " << rngs.size() << " streams / " << conditions.size()
                               << " conditions for batch " << pl.shape());
  FG_CHECK(model_.condition_aware(),
           "InferenceEngine: model " << model_.name() << " does not accept conditions");
  FG_TRACE_SPAN("serve.infer", "serve");
  tensor::InferenceModeGuard inference;
  Tensor out = model_.sample_rows_at(pl, conditions, rngs);
  ++stats_.batches;
  stats_.rows += rngs.size();
  static stats::Counter& rows_total = stats::counter("serve.rows_inferred");
  rows_total.add(rngs.size());
  return out;
}

void InferenceEngine::generate_into_at(const Tensor& pl,
                                       std::span<const data::Condition> conditions,
                                       std::span<flashgen::Rng> rngs, std::span<float> out) {
  Tensor result = sample_rows_at(pl, conditions, rngs);
  FG_CHECK(result.data().size() == out.size(),
           "InferenceEngine: output buffer holds " << out.size() << " floats but batch needs "
                                                   << result.data().size());
  std::copy(result.data().begin(), result.data().end(), out.begin());
}

}  // namespace flashgen::serve
