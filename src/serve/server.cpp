#include "serve/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "tensor/gemm_backend.h"

namespace flashgen::serve {

namespace {

// epoll user-data ids for the two non-connection fds; connection ids start
// above them.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstConnId = 2;

std::uint64_t micros_since(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

}  // namespace

Server::Server(ModelRegistry& registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)), governor_(options_.tenant) {
  endpoint_ = parse_endpoint(options_.endpoint);
  for (const std::string& name : registry_.names()) {
    // Supervised dispatchers: the ReplicaSupervisor can rebuild a wedged
    // replica's engine through the registry.
    dispatchers_.emplace(name,
                         std::make_unique<ReplicaDispatcher>(registry_, name, options_.policy,
                                                             options_.supervisor, &metrics_));
  }
  for (const std::string& name : registry_.names()) {
    // Threshold optimization needs a model that accepts a (PE, retention)
    // condition; unconditioned models answer kThresholdQuery with a typed
    // kError in dispatch_frame instead.
    if (!registry_.at(name).model().condition_aware()) continue;
    ThresholdServiceOptions threshold = options_.threshold;
    const tensor::Shape& row_shape = dispatchers_.at(name)->row_shape();
    threshold.optimizer.side = static_cast<int>(row_shape[row_shape.rank() - 1]);
    threshold_services_.emplace(
        name, std::make_unique<ThresholdService>(*dispatchers_.at(name), threshold));
  }
  if (options_.idle_timeout_micros > 0) {
    wheel_.resize(kWheelSlots);
    // Half-wheel resolution: an idle conn is caught within ~2 ticks of its
    // deadline, and the loop never wakes more than ~kWheelSlots/2 times per
    // timeout period. Floor of 1ms keeps tiny timeouts from hot-spinning.
    wheel_tick_ = std::chrono::microseconds(
        std::max<std::uint64_t>(options_.idle_timeout_micros / (kWheelSlots / 2), 1000));
  }

  const int backlog = options_.backlog >= 0 ? options_.backlog : SOMAXCONN;
  listen_fd_ = listen_endpoint(endpoint_, backlog);
  framing::set_nonblocking(listen_fd_);
  if (endpoint_.kind == Endpoint::Kind::kTcp && endpoint_.port == 0) {
    endpoint_.port = bound_port(listen_fd_);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  FG_CHECK(epoll_fd_ >= 0, "epoll_create1() failed: " << std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  FG_CHECK(wake_fd_ >= 0, "eventfd() failed: " << std::strerror(errno));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  FG_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
           "epoll_ctl(listener) failed: " << std::strerror(errno));
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  FG_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
           "epoll_ctl(eventfd) failed: " << std::strerror(errno));
}

Server::Server(ModelRegistry& registry, std::string socket_path, BatchPolicy policy)
    : Server(registry, [&] {
        ServerOptions options;
        options.endpoint = std::move(socket_path);
        options.policy = policy;
        return options;
      }()) {}

Server::~Server() {
  stop();
  // Join every worker / executor / supervisor thread (failing still-queued
  // work through completion callbacks, which may push + wake_loop) while the
  // completion queue and wake fd are still alive, THEN tear the fds down.
  // Threshold services go first: their workers sample through dispatchers.
  threshold_services_.clear();
  dispatchers_.clear();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

std::string Server::endpoint() const {
  Endpoint connectable = endpoint_;
  if (connectable.kind == Endpoint::Kind::kTcp && connectable.host.empty()) {
    connectable.host = "127.0.0.1";
  }
  return to_string(connectable);
}

std::uint16_t Server::port() const {
  FG_CHECK(endpoint_.kind == Endpoint::Kind::kTcp, "port(): not a TCP server");
  return endpoint_.port;
}

void Server::start() {
  FG_CHECK(!loop_thread_.joinable(), "Server already started");
  // Resolve (and announce) the GEMM backend before the first request, so a
  // bad FLASHGEN_GEMM_BACKEND fails loudly at startup rather than mid-batch.
  FG_LOG(Info) << "serving on " << endpoint() << " with GEMM backend \""
               << tensor::gemm_backend_name() << "\"";
  started_ = std::chrono::steady_clock::now();
  loop_thread_ = std::thread([this] { run_loop(); });
}

void Server::drain_and_stop() {
  if (stopping_.load()) return;
  if (!draining_.exchange(true)) {
    // Reject new work first (kOverloaded / kDraining), then let everything
    // already admitted run to completion — including the response writes —
    // before tearing down the loop. Threshold services drain before their
    // dispatchers close: an in-flight query still needs the fleet to sample.
    for (auto& [name, service] : threshold_services_) service->close();
    for (auto& [name, service] : threshold_services_) service->drain();
    for (auto& [name, dispatcher] : dispatchers_) dispatcher->close();
    for (auto& [name, dispatcher] : dispatchers_) dispatcher->drain();
    while (active_requests_.load() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop();
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  wake_loop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop has exited; tear down its fds from this thread, race-free.
  for (auto& [id, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // wake_fd_ / epoll_fd_ stay open until the destructor: executor threads may
  // still be finishing admitted work whose completion callbacks write the
  // eventfd, and closing it here would race them (fd-reuse hazard). The loop
  // has exited, so the writes just accumulate in the eventfd counter.
  if (endpoint_.kind == Endpoint::Kind::kUnix) ::unlink(endpoint_.path.c_str());
}

void Server::wake_loop() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // A full eventfd counter already guarantees a wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::run_loop() {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  wheel_last_tick_ = std::chrono::steady_clock::now();
  while (!stopping_.load()) {
    int timeout_ms = -1;
    if (options_.idle_timeout_micros > 0) {
      // Wake for the next wheel tick even with no fd activity.
      const auto until_tick = std::chrono::duration_cast<std::chrono::milliseconds>(
          wheel_last_tick_ + wheel_tick_ - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(std::clamp<long long>(until_tick.count(), 0, 60'000));
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      FG_LOG(Error) << "epoll_wait failed: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        std::uint64_t counter = 0;
        while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
        drain_completions();
      } else if (id == kListenerId) {
        on_listener_ready();
      } else {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;  // closed earlier this pass
        Conn& conn = *it->second;
        try {
          if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
            // Peer vanished; pipelined responses can no longer be delivered.
            close_conn(id);
            continue;
          }
          if ((events[i].events & EPOLLOUT) != 0) on_conn_writable(conn);
          if (conns_.count(id) == 0) continue;  // writable handler closed it
          if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0 && !conn.peer_eof) {
            on_conn_readable(conn);
          }
        } catch (const Error&) {
          // Malformed framing or a dead socket: drop only this connection.
          close_conn(id);
        }
      }
    }
    // Completions may land while handling other events; opportunistically
    // drain so responses never wait for the next epoll tick.
    drain_completions();
    if (options_.idle_timeout_micros > 0) tick_idle_wheel();
  }
}

void Server::tick_idle_wheel() {
  const auto now = std::chrono::steady_clock::now();
  while (now - wheel_last_tick_ >= wheel_tick_) {
    wheel_last_tick_ += wheel_tick_;
    wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
    std::vector<std::uint64_t> due;
    due.swap(wheel_[wheel_pos_]);
    for (const std::uint64_t id : due) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed since scheduling; stale entry
      Conn& conn = *it->second;
      const auto deadline =
          conn.last_activity + std::chrono::microseconds(options_.idle_timeout_micros);
      // A connection that is owed a response (requests pending or bytes
      // unflushed) is waiting on US, not idling; re-bucket it instead.
      const bool owes_nothing = conn.slots.empty() && conn.out_off == conn.outbuf.size();
      if (deadline <= now && owes_nothing) {
        evict_conn(conn, "idle timeout", /*send_error=*/false);
      } else {
        schedule_idle_check(id, std::max(deadline, now + wheel_tick_), now);
      }
    }
  }
}

void Server::schedule_idle_check(std::uint64_t conn_id,
                                 std::chrono::steady_clock::time_point deadline,
                                 std::chrono::steady_clock::time_point now) {
  const auto delta = std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
  std::uint64_t ticks = delta.count() <= 0 ? 1 : static_cast<std::uint64_t>(delta / wheel_tick_) + 1;
  // Deadlines past one revolution park at the farthest slot and re-bucket
  // when the wheel sweeps by (lazy cascading).
  ticks = std::clamp<std::uint64_t>(ticks, 1, kWheelSlots - 1);
  wheel_[(wheel_pos_ + ticks) % kWheelSlots].push_back(conn_id);
}

void Server::evict_conn(Conn& conn, const std::string& reason, bool send_error) {
  metrics_.record_conn_evicted();
  static stats::Counter& evicted = stats::counter("serve.conn_evicted");
  evicted.add();
  if (send_error) {
    // Best-effort typed goodbye so a well-behaved client learns why; a full
    // socket buffer or dead peer just drops it.
    try {
      const auto frame = framing::encode_frame(encode_error(reason));
      (void)framing::write_some(conn.fd, frame.data(), frame.size());
    } catch (...) {
    }
  }
  close_conn(conn.id);
}

void Server::on_listener_ready() {
  while (!stopping_.load()) {
    int fd = -1;
    int err = 0;
    // Fault seams: simulate accept() failing without a real client in the
    // picture (tests inject errno sequences through these).
    if (FG_FAULT("serve_accept_transient")) {
      err = ECONNABORTED;
    } else if (FG_FAULT("serve_accept_exhausted")) {
      err = EMFILE;
    } else {
      fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) err = errno;
    }
    if (fd >= 0) {
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id_++;
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        FG_LOG(Error) << "epoll_ctl(add conn) failed: " << std::strerror(errno);
        ::close(fd);
        continue;
      }
      static stats::Counter& accepted = stats::counter("serve.connections_accepted");
      accepted.add();
      const std::uint64_t conn_id = conn->id;
      conn->last_activity = std::chrono::steady_clock::now();
      if (options_.idle_timeout_micros > 0) {
        schedule_idle_check(
            conn_id, conn->last_activity + std::chrono::microseconds(options_.idle_timeout_micros),
            conn->last_activity);
      }
      conns_.emplace(conn_id, std::move(conn));
      continue;
    }
    if (err == EAGAIN || err == EWOULDBLOCK) return;  // backlog drained
    if (err == EINTR) continue;
    // Any other failure is transient from the listener's point of view —
    // ECONNABORTED (peer reset while queued), EMFILE/ENFILE (fd exhaustion),
    // ENOBUFS/ENOMEM, EPROTO. Exiting here would silently stop the server
    // from ever accepting again while existing connections keep it looking
    // alive; count the error and keep accepting.
    metrics_.record_accept_error();
    static stats::Counter& accept_errors = stats::counter("serve.accept_errors");
    accept_errors.add();
    if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
      // Out of fds: pause briefly so the retry isn't a hot spin; connections
      // close and free fds while we wait. Level-triggered epoll re-reports
      // the pending backlog immediately after.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return;
    }
  }
}

void Server::on_conn_readable(Conn& conn) {
  const framing::ReadStatus status = framing::read_some(conn.fd, conn.decoder);
  std::vector<std::uint8_t> payload;
  bool closed = false;
  while (conn.decoder.next(payload)) {
    dispatch_frame(conn, std::move(payload));
    if (conns_.count(conn.id) == 0) return;  // dispatch closed it
  }
  // Buffered-bytes cap: what remains in the decoder is a partial frame the
  // peer is dribbling in — exactly the slow-loris resource a hostile length
  // prefix pins.
  if (options_.max_conn_buffered_bytes > 0 &&
      conn.decoder.buffered() > options_.max_conn_buffered_bytes) {
    std::ostringstream os;
    os << "connection buffered " << conn.decoder.buffered() << " bytes (cap "
       << options_.max_conn_buffered_bytes << ")";
    evict_conn(conn, os.str(), /*send_error=*/true);
    return;
  }
  if (status == framing::ReadStatus::kEof) {
    // Clean EOF on a frame boundary: finish flushing pipelined responses,
    // then close. Mid-frame EOF is a protocol violation; drop immediately.
    FG_CHECK(conn.decoder.buffered() == 0, "protocol: truncated frame at EOF");
    conn.peer_eof = true;
    if (conn.slots.empty() && conn.outbuf.empty()) {
      close_conn(conn.id);
      closed = true;
    } else {
      update_epoll(conn);  // stop watching EPOLLIN; EOF would spin the loop
    }
  }
  if (!closed && conns_.count(conn.id) != 0) flush_conn(conn);
}

void Server::dispatch_frame(Conn& conn, std::vector<std::uint8_t> payload) {
  FG_TRACE_SPAN("serve.request", "serve");
  // Pipeline cap: a client may pipeline freely up to the bound; the frame
  // that would exceed it forfeits the connection (typed kError + close) so
  // one peer cannot pin unbounded response slots.
  if (options_.max_pipelined_requests > 0 &&
      conn.slots.size() >= options_.max_pipelined_requests) {
    std::ostringstream os;
    os << "pipelined request cap exceeded (" << conn.slots.size() << "/"
       << options_.max_pipelined_requests << ")";
    evict_conn(conn, os.str(), /*send_error=*/true);
    return;
  }
  const std::uint64_t seq = conn.next_seq++;
  conn.slots.emplace_back();
  conn.slots.back().t0 = std::chrono::steady_clock::now();
  conn.last_activity = conn.slots.back().t0;  // a complete frame is progress

  // Helper: resolve the slot we just created (dispatch never re-enters).
  const auto slot_ready = [&](std::vector<std::uint8_t> response_payload,
                              bool counts_as_active) {
    Slot& slot = conn.slots[static_cast<std::size_t>(seq - conn.head_seq)];
    slot.frame = framing::encode_frame(response_payload);
    slot.ready = true;
    slot.counts_as_active = counts_as_active;
  };

  try {
    const MessageType type = peek_type(payload);
    if (type == MessageType::kGenerate || type == MessageType::kGenerateV2) {
      const auto t0 = conn.slots.back().t0;
      GenerateRequest request = [&] {
        FG_TRACE_SPAN("serve.decode", "serve");
        return decode_generate_request(payload);
      }();
      auto& dispatcher = [&]() -> ReplicaDispatcher& {
        auto it = dispatchers_.find(request.model);
        FG_CHECK(it != dispatchers_.end(), "unknown model: " << request.model);
        return *it->second;
      }();
      metrics_.record_stage("decode", micros_since(t0));
      // Per-tenant token-bucket admission, ahead of the fleet queues: an
      // over-rate tenant drains only its own bucket and gets a typed
      // kRateLimited with a retry hint; everyone else's admission capacity
      // is untouched. Disabled (default) this is a strict no-op.
      const TenantGovernor::Decision admission = governor_.admit(request.tenant_id);
      if (!admission.admitted) {
        metrics_.record_rate_limited();
        static stats::Counter& rate_limited_total = stats::counter("serve.rate_limited");
        rate_limited_total.add();
        std::ostringstream os;
        os << "tenant " << request.tenant_id << " over admission rate; retry after "
           << admission.retry_after_micros << "us";
        slot_ready(encode_rate_limited(admission.retry_after_micros, os.str()),
                   /*counts_as_active=*/false);
        return;
      }
      // Mark the slot active *before* submit: the completion can fire on the
      // executor thread immediately.
      {
        Slot& slot = conn.slots[static_cast<std::size_t>(seq - conn.head_seq)];
        slot.counts_as_active = true;
      }
      ++active_requests_;
      const std::uint32_t side = request.side;
      const std::uint64_t conn_id = conn.id;
      const auto t_submit = std::chrono::steady_clock::now();
      try {
        dispatcher.submit_async(
            std::move(request.program_levels), request.seed, request.stream,
            request.deadline_micros,
            [this, conn_id, seq, side, t_submit](std::vector<float>&& voltages,
                                                 std::exception_ptr error) {
              // Executor thread: encode here (parallel with the loop), then
              // hand the payload over through the completion queue.
              std::vector<std::uint8_t> response_payload;
              if (!error) {
                GenerateResponse response;
                response.side = side;
                response.voltages = std::move(voltages);
                response_payload = encode_generate_response(response);
              } else {
                try {
                  std::rethrow_exception(error);
                } catch (const Overloaded& e) {
                  metrics_.record_shed();
                  response_payload = encode_overloaded(e.what());
                } catch (const Error& e) {
                  metrics_.record_error();
                  response_payload = encode_error(e.what());
                } catch (const std::exception& e) {
                  metrics_.record_error();
                  response_payload = encode_error(e.what());
                }
              }
              {
                std::lock_guard<std::mutex> lock(completions_mutex_);
                completions_.push_back(CompletionMsg{conn_id, seq, std::move(response_payload),
                                                     micros_since(t_submit)});
              }
              wake_loop();
            });
      } catch (...) {
        // Admission rejected synchronously: the completion will never fire,
        // so the active count unwinds here and the catch below answers.
        --active_requests_;
        Slot& slot = conn.slots[static_cast<std::size_t>(seq - conn.head_seq)];
        slot.counts_as_active = false;
        throw;
      }
    } else if (type == MessageType::kThresholdQuery) {
      const auto t0 = conn.slots.back().t0;
      const ThresholdQuery query = [&] {
        FG_TRACE_SPAN("serve.decode", "serve");
        return decode_threshold_query(payload);
      }();
      auto& service = [&]() -> ThresholdService& {
        auto it = threshold_services_.find(query.model);
        if (it == threshold_services_.end()) {
          FG_CHECK(dispatchers_.find(query.model) != dispatchers_.end(),
                   "unknown model: " << query.model);
          FG_CHECK(false, "model " << query.model
                                   << " is not condition-aware; threshold queries need a "
                                      "(PE, retention)-conditioned model");
        }
        return *it->second;
      }();
      metrics_.record_stage("decode", micros_since(t0));
      // Threshold queries share the generate path's admission layers: the
      // per-tenant token bucket here, then the service's own bounded queue
      // (Overloaded), then the fleet queues its sampling rides on.
      const TenantGovernor::Decision admission = governor_.admit(query.tenant_id);
      if (!admission.admitted) {
        metrics_.record_rate_limited();
        static stats::Counter& rate_limited_total = stats::counter("serve.rate_limited");
        rate_limited_total.add();
        std::ostringstream os;
        os << "tenant " << query.tenant_id << " over admission rate; retry after "
           << admission.retry_after_micros << "us";
        slot_ready(encode_rate_limited(admission.retry_after_micros, os.str()),
                   /*counts_as_active=*/false);
        return;
      }
      static stats::Counter& threshold_queries_total = stats::counter("serve.threshold_queries");
      threshold_queries_total.add();
      {
        Slot& slot = conn.slots[static_cast<std::size_t>(seq - conn.head_seq)];
        slot.counts_as_active = true;
      }
      ++active_requests_;
      const std::uint64_t conn_id = conn.id;
      const auto t_submit = std::chrono::steady_clock::now();
      try {
        service.submit_async(
            {query.pe_cycles, query.retention_hours},
            [this, conn_id, seq, t_submit](thresholds::ThresholdReport report,
                                           std::exception_ptr error) {
              // Service worker thread: encode here, hand over via the queue.
              std::vector<std::uint8_t> response_payload;
              if (!error) {
                response_payload = encode_threshold_response(to_response(report));
              } else {
                try {
                  std::rethrow_exception(error);
                } catch (const Overloaded& e) {
                  metrics_.record_shed();
                  response_payload = encode_overloaded(e.what());
                } catch (const Error& e) {
                  metrics_.record_error();
                  response_payload = encode_error(e.what());
                } catch (const std::exception& e) {
                  metrics_.record_error();
                  response_payload = encode_error(e.what());
                }
              }
              {
                std::lock_guard<std::mutex> lock(completions_mutex_);
                completions_.push_back(CompletionMsg{conn_id, seq, std::move(response_payload),
                                                     micros_since(t_submit)});
              }
              wake_loop();
            });
      } catch (...) {
        --active_requests_;
        Slot& slot = conn.slots[static_cast<std::size_t>(seq - conn.head_seq)];
        slot.counts_as_active = false;
        throw;
      }
    } else if (type == MessageType::kStats) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
      slot_ready(encode_stats_response(metrics_.to_json(elapsed)), /*counts_as_active=*/false);
    } else if (type == MessageType::kHealth) {
      HealthStatus status = HealthStatus::kReady;
      if (draining_.load()) {
        status = HealthStatus::kDraining;
      } else {
        for (const auto& [name, dispatcher] : dispatchers_) {
          if (dispatcher->quarantined_replicas() > 0) {
            status = HealthStatus::kDegraded;  // serving, but under capacity
            break;
          }
        }
      }
      slot_ready(encode_health_response(status), /*counts_as_active=*/false);
    } else {
      FG_CHECK(false, "unexpected message type " << static_cast<int>(type));
    }
  } catch (const Overloaded& e) {
    slot_ready(encode_overloaded(e.what()), /*counts_as_active=*/false);
  } catch (const Error& e) {
    metrics_.record_error();
    slot_ready(encode_error(e.what()), /*counts_as_active=*/false);
  }
}

void Server::drain_completions() {
  std::deque<CompletionMsg> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (CompletionMsg& msg : batch) {
    auto it = conns_.find(msg.conn_id);
    if (it == conns_.end()) continue;  // connection died; slot already settled
    finish_slot(*it->second, msg.seq, std::move(msg.payload), msg.infer_wait_micros);
  }
}

void Server::finish_slot(Conn& conn, std::uint64_t seq, std::vector<std::uint8_t> payload,
                         std::uint64_t infer_wait_micros) {
  const std::size_t index = static_cast<std::size_t>(seq - conn.head_seq);
  FG_CHECK(index < conn.slots.size(), "serve: completion for unknown slot " << seq);
  Slot& slot = conn.slots[index];
  slot.frame = framing::encode_frame(payload);
  slot.ready = true;
  // Queueing delay plus batched inference, as the request saw it.
  metrics_.record_stage("infer_wait", infer_wait_micros);
  metrics_.record_request(micros_since(slot.t0));
  flush_conn(conn);
}

void Server::flush_conn(Conn& conn) {
  // Move every leading ready slot into the write buffer (request order), then
  // push as much as the socket accepts; EPOLLOUT finishes the rest.
  int appended_active = 0;
  while (!conn.slots.empty() && conn.slots.front().ready) {
    Slot& slot = conn.slots.front();
    conn.outbuf.insert(conn.outbuf.end(), slot.frame.begin(), slot.frame.end());
    if (slot.counts_as_active) ++appended_active;
    conn.slots.pop_front();
    ++conn.head_seq;
  }
  conn.active_unflushed += appended_active;

  if (conn.out_off < conn.outbuf.size()) {
    const auto t_write = std::chrono::steady_clock::now();
    const std::size_t n = framing::write_some(conn.fd, conn.outbuf.data() + conn.out_off,
                                              conn.outbuf.size() - conn.out_off);
    conn.out_off += n;
    if (n > 0) {
      metrics_.record_stage("write", micros_since(t_write));
      conn.last_activity = std::chrono::steady_clock::now();  // write progress
    }
  }
  // Buffered-bytes cap on the outbound side: a peer that stops reading while
  // responses pile up gets evicted instead of pinning the buffer. No typed
  // goodbye — its socket buffer is what's full.
  if (options_.max_conn_buffered_bytes > 0 &&
      conn.outbuf.size() - conn.out_off > options_.max_conn_buffered_bytes) {
    std::ostringstream os;
    os << "connection has " << conn.outbuf.size() - conn.out_off
       << " unread response bytes (cap " << options_.max_conn_buffered_bytes << ")";
    evict_conn(conn, os.str(), /*send_error=*/false);
    return;
  }
  if (conn.out_off == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
    if (conn.active_unflushed > 0) {
      active_requests_ -= conn.active_unflushed;
      conn.active_unflushed = 0;
    }
    if (conn.peer_eof && conn.slots.empty()) {
      close_conn(conn.id);
      return;
    }
  }
  update_epoll(conn);
}

void Server::on_conn_writable(Conn& conn) { flush_conn(conn); }

void Server::update_epoll(Conn& conn) {
  std::uint32_t events = 0;
  if (!conn.peer_eof) events |= EPOLLIN | EPOLLRDHUP;
  const bool want_write = conn.out_off < conn.outbuf.size();
  if (want_write) events |= EPOLLOUT;
  if (want_write == conn.want_write && !conn.peer_eof) return;  // no change
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
    FG_LOG(Error) << "epoll_ctl(mod conn) failed: " << std::strerror(errno);
  }
}

void Server::close_conn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  // Settle drain accounting for everything this connection still owed:
  // responses sitting in the write buffer and requests still in flight.
  int active = conn.active_unflushed;
  for (const Slot& slot : conn.slots) {
    if (slot.counts_as_active) ++active;
  }
  if (active > 0) active_requests_ -= active;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conns_.erase(it);
}

Client::Client(const std::string& endpoint_spec) {
  fd_ = connect_endpoint(parse_endpoint(endpoint_spec));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

GenerateResponse Client::generate(const GenerateRequest& request) {
  write_frame(fd_, encode_generate_request(request));
  std::vector<std::uint8_t> payload;
  FG_CHECK(read_frame(fd_, payload), "server closed connection");
  if (peek_type(payload) == MessageType::kOverloaded) {
    throw Overloaded("server overloaded: " + decode_overloaded(payload));
  }
  if (peek_type(payload) == MessageType::kRateLimited) {
    const RateLimitedInfo info = decode_rate_limited(payload);
    throw RateLimited("rate limited: " + info.message, info.retry_after_micros);
  }
  if (peek_type(payload) == MessageType::kError) {
    FG_CHECK(false, "server error: " << decode_error(payload));
  }
  return decode_generate_response(payload);
}

ThresholdResponse Client::threshold_query(const ThresholdQuery& query) {
  write_frame(fd_, encode_threshold_query(query));
  std::vector<std::uint8_t> payload;
  FG_CHECK(read_frame(fd_, payload), "server closed connection");
  if (peek_type(payload) == MessageType::kOverloaded) {
    throw Overloaded("server overloaded: " + decode_overloaded(payload));
  }
  if (peek_type(payload) == MessageType::kRateLimited) {
    const RateLimitedInfo info = decode_rate_limited(payload);
    throw RateLimited("rate limited: " + info.message, info.retry_after_micros);
  }
  if (peek_type(payload) == MessageType::kError) {
    FG_CHECK(false, "server error: " << decode_error(payload));
  }
  return decode_threshold_response(payload);
}

GenerateResponse Client::generate_with_retry(const GenerateRequest& request,
                                             const RetryPolicy& policy) {
  for (int attempt = 0;; ++attempt) {
    std::uint64_t server_hint_micros = 0;
    try {
      return generate(request);
    } catch (const RateLimited& e) {
      if (attempt + 1 >= policy.max_attempts) throw;
      server_hint_micros = e.retry_after_micros();
    } catch (const Overloaded&) {
      if (attempt + 1 >= policy.max_attempts) throw;
    }
    // Capped exponential backoff with deterministic jitter in
    // [backoff/2, backoff]: same seed replays the same schedule, different
    // seeds desynchronize a retry storm. The server's retry_after hint is a
    // floor — sleeping less would just be shed again.
    const int shift = std::min(attempt, 20);
    const std::uint64_t ceiling = std::min(policy.max_backoff_micros,
                                           policy.base_backoff_micros << shift);
    std::uint64_t wait = ceiling;
    if (ceiling > 0) {
      Rng rng(policy.seed ^ (static_cast<std::uint64_t>(attempt) + 1));
      wait = ceiling / 2 + rng.uniform_int(ceiling / 2 + 1);
    }
    wait = std::max(wait, server_hint_micros);
    if (wait > 0) std::this_thread::sleep_for(std::chrono::microseconds(wait));
  }
}

HealthStatus Client::health() {
  write_frame(fd_, encode_health_request());
  std::vector<std::uint8_t> payload;
  FG_CHECK(read_frame(fd_, payload), "server closed connection");
  if (peek_type(payload) == MessageType::kError) {
    FG_CHECK(false, "server error: " << decode_error(payload));
  }
  return decode_health_response(payload);
}

std::string Client::stats() {
  write_frame(fd_, encode_stats_request());
  std::vector<std::uint8_t> payload;
  FG_CHECK(read_frame(fd_, payload), "server closed connection");
  if (peek_type(payload) == MessageType::kError) {
    FG_CHECK(false, "server error: " << decode_error(payload));
  }
  return decode_stats_response(payload);
}

}  // namespace flashgen::serve
