#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/trace.h"
#include "tensor/gemm_backend.h"

namespace flashgen::serve {

namespace {
sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FG_CHECK(path.size() < sizeof(addr.sun_path),
           "socket path too long (" << path.size() << " bytes): " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}
}  // namespace

Server::Server(ModelRegistry& registry, std::string socket_path, BatchPolicy policy)
    : registry_(registry), socket_path_(std::move(socket_path)), policy_(policy) {
  for (const std::string& name : registry_.names()) {
    auto& entry = registry_.at(name);
    batchers_.emplace(name, std::make_unique<RequestBatcher>(*entry.engine, entry.row_shape,
                                                             policy_, &metrics_));
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FG_CHECK(listen_fd_ >= 0, "socket() failed: " << std::strerror(errno));
  ::unlink(socket_path_.c_str());
  sockaddr_un addr = make_address(socket_path_);
  FG_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
           "bind(" << socket_path_ << ") failed: " << std::strerror(errno));
  FG_CHECK(::listen(listen_fd_, 64) == 0, "listen() failed: " << std::strerror(errno));
}

Server::~Server() { stop(); }

void Server::start() {
  FG_CHECK(!accept_thread_.joinable(), "Server already started");
  // Resolve (and announce) the GEMM backend before the first request, so a
  // bad FLASHGEN_GEMM_BACKEND fails loudly at startup rather than mid-batch.
  FG_LOG(Info) << "serving with GEMM backend \"" << tensor::gemm_backend_name() << "\"";
  started_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::drain_and_stop() {
  if (stopping_.load()) return;
  if (!draining_.exchange(true)) {
    // Reject new work first (kOverloaded / kDraining), then let everything
    // already admitted run to completion — including the response writes —
    // before tearing down the threads.
    for (auto& [name, batcher] : batchers_) batcher->close();
    for (auto& [name, batcher] : batchers_) batcher->drain();
    while (active_requests_.load() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop();
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  if (const int fd = listen_fd_.exchange(-1); fd >= 0) {
    // Closing the listener unblocks accept().
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    // Wake connection threads parked in read_frame on idle connections:
    // shutdown() makes their pending reads return EOF. The threads own the
    // close(); fds are only shut down here while still in conn_fds_.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) w.join();
  ::unlink(socket_path_.c_str());
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(workers_mutex_);
    if (stopping_.load()) {
      // stop() already swapped the worker list; a thread added now would
      // never be joined.
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::vector<std::uint8_t> payload;
  try {
    while (read_frame(fd, payload)) {
      try {
        const MessageType type = peek_type(payload);
        if (type == MessageType::kGenerate) {
          FG_TRACE_SPAN("serve.request", "serve");
          // Drain accounting: drain_and_stop() waits for this to hit zero so
          // a response already being computed is always delivered.
          ++active_requests_;
          struct ActiveGuard {
            std::atomic<int>& n;
            ~ActiveGuard() { --n; }
          } guard{active_requests_};
          const auto micros_since = [](std::chrono::steady_clock::time_point since) {
            return static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - since)
                    .count());
          };
          const auto t0 = std::chrono::steady_clock::now();
          GenerateRequest request = [&] {
            FG_TRACE_SPAN("serve.decode", "serve");
            return decode_generate_request(payload);
          }();
          auto& batcher = [&]() -> RequestBatcher& {
            auto it = batchers_.find(request.model);
            FG_CHECK(it != batchers_.end(), "unknown model: " << request.model);
            return *it->second;
          }();
          metrics_.record_stage("decode", micros_since(t0));
          const auto t_submit = std::chrono::steady_clock::now();
          auto future = batcher.submit(std::move(request.program_levels), request.seed,
                                       request.stream, request.deadline_micros);
          GenerateResponse response;
          response.side = request.side;
          response.voltages = future.get();
          // Queueing delay plus batched inference, as the request saw it.
          metrics_.record_stage("infer_wait", micros_since(t_submit));
          const auto t_write = std::chrono::steady_clock::now();
          {
            FG_TRACE_SPAN("serve.write", "serve");
            write_frame(fd, encode_generate_response(response));
          }
          metrics_.record_stage("write", micros_since(t_write));
          metrics_.record_request(micros_since(t0));
        } else if (type == MessageType::kStats) {
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
          write_frame(fd, encode_stats_response(metrics_.to_json(elapsed)));
        } else if (type == MessageType::kHealth) {
          write_frame(fd, encode_health_response(draining_.load() ? HealthStatus::kDraining
                                                                  : HealthStatus::kReady));
        } else {
          FG_CHECK(false, "unexpected message type " << static_cast<int>(type));
        }
      } catch (const Overloaded& e) {
        write_frame(fd, encode_overloaded(e.what()));
      } catch (const Error& e) {
        metrics_.record_error();
        write_frame(fd, encode_error(e.what()));
      }
    }
  } catch (const Error&) {
    // Malformed frame or write-side failure: drop the connection.
  }
  {
    // Deregister before close so stop() never shuts down a recycled fd.
    std::lock_guard<std::mutex> lock(workers_mutex_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  ::close(fd);
}

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FG_CHECK(fd_ >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_un addr = make_address(socket_path);
  FG_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
           "connect(" << socket_path << ") failed: " << std::strerror(errno));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

GenerateResponse Client::generate(const GenerateRequest& request) {
  write_frame(fd_, encode_generate_request(request));
  std::vector<std::uint8_t> payload;
  FG_CHECK(read_frame(fd_, payload), "server closed connection");
  if (peek_type(payload) == MessageType::kOverloaded) {
    throw Overloaded("server overloaded: " + decode_overloaded(payload));
  }
  if (peek_type(payload) == MessageType::kError) {
    FG_CHECK(false, "server error: " << decode_error(payload));
  }
  return decode_generate_response(payload);
}

HealthStatus Client::health() {
  write_frame(fd_, encode_health_request());
  std::vector<std::uint8_t> payload;
  FG_CHECK(read_frame(fd_, payload), "server closed connection");
  if (peek_type(payload) == MessageType::kError) {
    FG_CHECK(false, "server error: " << decode_error(payload));
  }
  return decode_health_response(payload);
}

std::string Client::stats() {
  write_frame(fd_, encode_stats_request());
  std::vector<std::uint8_t> payload;
  FG_CHECK(read_frame(fd_, payload), "server closed connection");
  if (peek_type(payload) == MessageType::kError) {
    FG_CHECK(false, "server error: " << decode_error(payload));
  }
  return decode_stats_response(payload);
}

}  // namespace flashgen::serve
