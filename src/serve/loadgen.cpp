#include "serve/loadgen.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>

#include "common/error.h"
#include "common/framing.h"
#include "common/rng.h"
#include "data/normalization.h"
#include "serve/endpoint.h"
#include "serve/protocol.h"

namespace flashgen::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

struct ClientConn {
  int fd = -1;
  framing::FrameDecoder decoder;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_off = 0;
  bool want_write = false;
  std::deque<Clock::time_point> pending;  // scheduled time, request order
};

}  // namespace

std::uint64_t exact_quantile_us(std::vector<std::uint64_t>& sample, double q) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const double rank = q * static_cast<double>(sample.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;  // nearest-rank, 1-based -> 0-based
  index = std::min(index, sample.size() - 1);
  return sample[index];
}

OpenLoopResult run_open_loop(const OpenLoopOptions& options) {
  FG_CHECK(options.connections > 0, "open loop: need at least one connection");
  FG_CHECK(options.total_requests > 0, "open loop: need at least one request");
  FG_CHECK(options.target_rps > 0.0, "open loop: target_rps must be positive");

  const Endpoint endpoint = parse_endpoint(options.endpoint);
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  FG_CHECK(epoll_fd >= 0, "epoll_create1() failed: " << std::strerror(errno));

  std::vector<ClientConn> conns(static_cast<std::size_t>(options.connections));
  for (std::size_t i = 0; i < conns.size(); ++i) {
    conns[i].fd = connect_endpoint(endpoint);
    framing::set_nonblocking(conns[i].fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    FG_CHECK(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, conns[i].fd, &ev) == 0,
             "epoll_ctl(add) failed: " << std::strerror(errno));
  }

  const auto update_write_interest = [&](std::size_t i) {
    ClientConn& conn = conns[i];
    const bool want = conn.out_off < conn.outbuf.size();
    if (want == conn.want_write) return;
    conn.want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u64 = i;
    FG_CHECK(::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0,
             "epoll_ctl(mod) failed: " << std::strerror(errno));
  };

  const auto flush = [&](std::size_t i) {
    ClientConn& conn = conns[i];
    if (conn.out_off < conn.outbuf.size()) {
      conn.out_off += framing::write_some(conn.fd, conn.outbuf.data() + conn.out_off,
                                          conn.outbuf.size() - conn.out_off);
    }
    if (conn.out_off == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_off = 0;
    }
    update_write_interest(i);
  };

  data::VoltageNormalizer normalizer;
  GenerateRequest request;
  request.model = options.model;
  request.seed = options.seed;
  request.side = options.side;
  request.deadline_micros = options.deadline_micros;
  request.tenant_id = options.tenant_id;
  request.program_levels.resize(static_cast<std::size_t>(options.side) * options.side);

  ThresholdQuery threshold_query;
  threshold_query.model = options.model;
  threshold_query.tenant_id = options.tenant_id;
  threshold_query.pe_cycles = options.threshold_pe;
  threshold_query.retention_hours = options.threshold_retention;

  OpenLoopResult result;
  std::vector<std::uint64_t> latencies;
  latencies.reserve(static_cast<std::size_t>(options.total_requests));
  const std::uint64_t total = static_cast<std::uint64_t>(options.total_requests);
  const double micros_per_request = 1e6 / options.target_rps;
  const auto t0 = Clock::now();
  std::uint64_t completed = 0;

  const auto scheduled_at = [&](std::uint64_t i) {
    return t0 + std::chrono::microseconds(
                    static_cast<std::int64_t>(static_cast<double>(i) * micros_per_request));
  };

  const auto consume_frames = [&](std::size_t i) {
    ClientConn& conn = conns[i];
    std::vector<std::uint8_t> payload;
    while (conn.decoder.next(payload)) {
      FG_CHECK(!conn.pending.empty(), "open loop: unsolicited response frame");
      const Clock::time_point t_sched = conn.pending.front();
      conn.pending.pop_front();
      ++completed;
      const MessageType type = peek_type(payload);
      if (type == MessageType::kGenerateOk) {
        ++result.ok;
        result.checksum ^= fnv1a(payload);
        const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - t_sched);
        latencies.push_back(static_cast<std::uint64_t>(std::max<std::int64_t>(0, micros.count())));
      } else if (type == MessageType::kThresholdOk) {
        // Mixed-workload recalibration reply. Counted separately and kept out
        // of the generate latency quantiles (a threshold query costs whole
        // sampling waves; folding it in would poison the generate tail). The
        // trailing from_cache byte is zeroed before hashing so cache-cold and
        // cache-warm runs — whose reports are bit-identical by construction —
        // also produce equal checksums.
        ++result.threshold_ok;
        std::vector<std::uint8_t> canonical = payload;
        if (!canonical.empty()) canonical.back() = 0;
        result.checksum ^= fnv1a(canonical);
      } else if (type == MessageType::kOverloaded) {
        ++result.shed;
      } else if (type == MessageType::kRateLimited) {
        // Typed per-tenant shed. Deliberately NOT retried here: open-loop
        // latency stays coordinated-omission-free only if the injection
        // schedule ignores server pushback.
        ++result.rate_limited;
      } else {
        ++result.errors;
      }
    }
  };

  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (completed < total) {
    // Inject every request whose scheduled time has arrived — on schedule
    // even when the server is slow; that is the open-loop contract.
    const auto now = Clock::now();
    while (result.sent < total && scheduled_at(result.sent) <= now) {
      const std::uint64_t index = result.sent;
      const bool is_threshold =
          options.threshold_every > 0 &&
          index % static_cast<std::uint64_t>(options.threshold_every) == 0;
      std::vector<std::uint8_t> body;
      if (is_threshold) {
        body = encode_threshold_query(threshold_query);
      } else {
        Rng rng(options.seed + index + 1);
        for (float& v : request.program_levels) {
          v = normalizer.normalize_level(static_cast<int>(rng.uniform_int(8)));
        }
        request.stream = index;
        body = encode_generate_request(request);
      }
      const std::size_t c = static_cast<std::size_t>(index % conns.size());
      const std::vector<std::uint8_t> frame = framing::encode_frame(body);
      conns[c].outbuf.insert(conns[c].outbuf.end(), frame.begin(), frame.end());
      conns[c].pending.push_back(scheduled_at(index));
      ++result.sent;
      flush(c);
    }

    int timeout_ms = 1000;  // all sent: wait for responses in bounded steps
    if (result.sent < total) {
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          scheduled_at(result.sent) - Clock::now());
      timeout_ms = static_cast<int>(std::clamp<std::int64_t>(wait.count(), 0, 1000));
    }
    const int n = ::epoll_wait(epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      FG_CHECK(errno == EINTR, "epoll_wait failed: " << std::strerror(errno));
      continue;
    }
    for (int e = 0; e < n; ++e) {
      const std::size_t i = static_cast<std::size_t>(events[e].data.u64);
      if ((events[e].events & EPOLLOUT) != 0) flush(i);
      if ((events[e].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        const framing::ReadStatus status = framing::read_some(conns[i].fd, conns[i].decoder);
        consume_frames(i);
        FG_CHECK(status != framing::ReadStatus::kEof || completed >= total,
                 "open loop: server closed connection mid-run");
      }
    }
  }

  result.elapsed_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  result.achieved_rps = static_cast<double>(completed) / result.elapsed_sec;
  result.p50_us = exact_quantile_us(latencies, 0.50);
  result.p90_us = exact_quantile_us(latencies, 0.90);
  result.p99_us = exact_quantile_us(latencies, 0.99);
  result.p999_us = exact_quantile_us(latencies, 0.999);
  result.max_us = latencies.empty() ? 0 : latencies.back();

  for (ClientConn& conn : conns) ::close(conn.fd);
  ::close(epoll_fd);
  return result;
}

}  // namespace flashgen::serve
