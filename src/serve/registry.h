// ModelRegistry: named, warmed-up inference engines for the serving runtime.
//
// Each entry owns one or more replicas: a trained GenerativeModel plus the
// InferenceEngine wrapping it. Replicas of one entry are separate model
// instances with identical weights (trained deterministically from the same
// seed, or restored from the same checkpoint); the replica dispatcher runs
// one executor thread per replica, so replicas must not share mutable state.
// Models enter the registry either pre-trained (add / add_replica) or from a
// checkpoint on disk (load, via core::make_model + GenerativeModel::load).
// Registration warms each engine up so the first real request hits a primed
// workspace pool.
//
// Lookup is read-only after startup; registration is not thread-safe with
// concurrent lookups, so register every model before serving traffic.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "serve/engine.h"
#include "tensor/shape.h"

namespace flashgen::serve {

class ModelRegistry {
 public:
  struct Replica {
    std::unique_ptr<models::GenerativeModel> model;
    std::unique_ptr<InferenceEngine> engine;
  };

  struct Entry {
    std::vector<Replica> replicas;  // at least one
    tensor::Shape row_shape;  // one sample without the batch dim, e.g. (1, S, S)

    /// First replica's engine/model — the single-replica common case.
    InferenceEngine& engine() { return *replicas.front().engine; }
    models::GenerativeModel& model() { return *replicas.front().model; }
    /// Every replica's engine, for the dispatcher.
    std::vector<InferenceEngine*> engines();
  };

  /// Registers a trained model under `name` as the entry's first replica and
  /// warms its engine up with a `warmup_batch`-row batch (0 skips warmup,
  /// e.g. for tests).
  void add(const std::string& name, std::unique_ptr<models::GenerativeModel> model,
           const tensor::Shape& row_shape, std::size_t warmup_batch = 8);

  /// Appends another replica to an existing entry. `model` must hold weights
  /// identical to the entry's first replica (same training seed or same
  /// checkpoint) — responses are bit-identical across replicas only then.
  void add_replica(const std::string& name, std::unique_ptr<models::GenerativeModel> model,
                   std::size_t warmup_batch = 8);

  /// Builds an untrained model of `kind`, restores `checkpoint_path` into it,
  /// and registers it. `config.array_size` fixes the row shape (1, S, S).
  /// `replicas` > 1 loads that many independent instances of the checkpoint.
  void load(const std::string& name, core::ModelKind kind,
            const models::NetworkConfig& config, const std::string& checkpoint_path,
            std::size_t warmup_batch = 8, std::size_t replicas = 1);

  /// Replaces replica `replica`'s engine with a fresh InferenceEngine over
  /// the same model weights — the supervisor's restart path for a quarantined
  /// replica. Only safe once the old engine is no longer referenced (the
  /// replica's executor thread has been joined). Skips warmup: a restart
  /// should come back fast, and the workspace pool re-primes on first use.
  /// The replicas vector is never resized, so other replicas' engine
  /// pointers stay valid.
  InferenceEngine& rebuild_replica(const std::string& name, std::size_t replica);

  bool contains(const std::string& name) const { return entries_.count(name) != 0; }
  /// FG_CHECKs that `name` is registered.
  Entry& at(const std::string& name);
  std::vector<std::string> names() const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace flashgen::serve
