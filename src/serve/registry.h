// ModelRegistry: named, warmed-up inference engines for the serving runtime.
//
// Each entry owns a trained GenerativeModel plus the InferenceEngine wrapping
// it. Models enter the registry either pre-trained (add) or from a checkpoint
// on disk (load, via core::make_model + GenerativeModel::load). Registration
// warms the engine up so the first real request hits a primed workspace pool.
//
// Lookup is read-only after startup; registration is not thread-safe with
// concurrent lookups, so register every model before serving traffic.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "serve/engine.h"
#include "tensor/shape.h"

namespace flashgen::serve {

class ModelRegistry {
 public:
  struct Entry {
    std::unique_ptr<models::GenerativeModel> model;
    std::unique_ptr<InferenceEngine> engine;
    tensor::Shape row_shape;  // one sample without the batch dim, e.g. (1, S, S)
  };

  /// Registers a trained model under `name` and warms its engine up with a
  /// `warmup_batch`-row batch (0 skips warmup, e.g. for tests).
  void add(const std::string& name, std::unique_ptr<models::GenerativeModel> model,
           const tensor::Shape& row_shape, std::size_t warmup_batch = 8);

  /// Builds an untrained model of `kind`, restores `checkpoint_path` into it,
  /// and registers it. `config.array_size` fixes the row shape (1, S, S).
  void load(const std::string& name, core::ModelKind kind,
            const models::NetworkConfig& config, const std::string& checkpoint_path,
            std::size_t warmup_batch = 8);

  bool contains(const std::string& name) const { return entries_.count(name) != 0; }
  /// FG_CHECKs that `name` is registered.
  Entry& at(const std::string& name);
  std::vector<std::string> names() const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace flashgen::serve
