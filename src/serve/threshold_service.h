// ThresholdService: wear-aware read-threshold optimization behind the serve
// front end.
//
// A kThresholdQuery costs waves x batch_rows model forward passes — far too
// heavy for the epoll loop thread. Each condition-aware model gets one
// ThresholdService: a worker thread that pops queries from a bounded queue,
// runs the ThresholdOptimizer (sampling THROUGH the model's
// ReplicaDispatcher, so the heavy lifting lands on the replica executor
// threads and obeys their admission bounds), and hands the report to a
// completion callback. The epoll server re-enters its loop through the same
// completion-queue + eventfd path as generate requests.
//
// Determinism: DispatcherSampler submits each sampling row with its own
// counter-derived stream, and replies carry no per-query entropy — a
// response is a pure function of (checkpoint, condition, optimizer config),
// bit-identical across FLASHGEN_THREADS, replica counts, and cache state
// (from_cache is the only field that reflects the cache).
//
// Admission: submit_async throws Overloaded when the service queue is at its
// bound or the service is closed; per-tenant token buckets run in the server
// ahead of this queue, exactly as for generates.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "serve/dispatcher.h"
#include "serve/protocol.h"
#include "thresholds/optimizer.h"

namespace flashgen::serve {

/// ChannelSampler over the replica fleet: each row becomes one conditioned
/// least-loaded submit carrying the row's own RNG stream; results are
/// collected in request order, so reports match the in-process ModelSampler
/// bit-for-bit at any replica count or batching.
class DispatcherSampler : public thresholds::ChannelSampler {
 public:
  /// `dispatcher` must outlive the sampler.
  explicit DispatcherSampler(ReplicaDispatcher& dispatcher) : dispatcher_(dispatcher) {}

  std::vector<std::vector<float>> sample(std::span<const thresholds::RowRequest> rows,
                                         std::uint64_t seed,
                                         const data::Condition& condition) override;

 private:
  ReplicaDispatcher& dispatcher_;
};

struct ThresholdServiceOptions {
  thresholds::OptimizerConfig optimizer;
  /// Queued + in-flight queries beyond this are shed with Overloaded;
  /// 0 = unbounded.
  std::size_t max_queue = 64;
};

class ThresholdService {
 public:
  /// Exactly one of `report` / `error` is meaningful. Invoked on the service
  /// worker thread — keep it cheap and non-blocking.
  using Completion =
      std::function<void(thresholds::ThresholdReport report, std::exception_ptr error)>;

  /// `dispatcher` must outlive the service and stay open while queries are
  /// in flight (the server drains services before closing dispatchers).
  ThresholdService(ReplicaDispatcher& dispatcher, ThresholdServiceOptions options);
  ~ThresholdService();

  ThresholdService(const ThresholdService&) = delete;
  ThresholdService& operator=(const ThresholdService&) = delete;

  /// Enqueues one query. Throws Overloaded when closed or at max_queue.
  void submit_async(const data::Condition& condition, Completion done);

  /// Blocking flavor for offline callers and tests.
  thresholds::ThresholdReport query(const data::Condition& condition);

  /// Stops admitting (submits throw Overloaded); queued work still runs.
  void close();
  /// Blocks until every admitted query has completed.
  void drain();

  /// Drops cached reports (e.g. after a checkpoint reload).
  void invalidate() { optimizer_.invalidate(); }

  const thresholds::ThresholdOptimizer& optimizer() const { return optimizer_; }
  std::size_t outstanding() const;

 private:
  struct Pending {
    data::Condition condition;
    Completion done;
  };

  void run();

  DispatcherSampler sampler_;
  thresholds::ThresholdOptimizer optimizer_;
  ThresholdServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;       // worker: work available or stopping
  std::condition_variable idle_cv_;  // drain(): queue empty + nothing in flight
  std::deque<Pending> queue_;
  bool closed_ = false;
  bool stop_ = false;
  int in_flight_ = 0;
  std::thread worker_;
};

/// Wire mirror of a ThresholdReport.
ThresholdResponse to_response(const thresholds::ThresholdReport& report);

}  // namespace flashgen::serve
