// Server: epoll-multiplexed front-end for the serving runtime.
//
// One event-loop thread multiplexes every connection (thousands of TCP or
// AF_UNIX sockets) with non-blocking I/O: per-connection read buffers
// reassemble length-prefixed frames across arbitrary partial transfers
// (framing::FrameDecoder), write buffers absorb partial sends and flush on
// EPOLLOUT, and requests pipeline — a connection may have any number of
// requests in flight; responses return in request order. kGenerate frames
// route through a per-model ReplicaDispatcher (least-loaded over N replica
// engines, each with its own batcher + executor thread, extending the
// bounded-admission and deadline-shedding behavior); completions re-enter
// the loop through a queue + eventfd wakeup. Request errors are answered
// with a kError frame on the same connection; the connection survives.
// Malformed framing drops only the offending connection.
//
// The accept path is storm-proof: transient accept() failures (ECONNABORTED,
// EMFILE, ENFILE, ...) are counted in serve.accept_errors and retried — with
// a short pause on fd exhaustion — instead of silently ending accepts while
// existing connections keep the server looking alive. The listen backlog
// defaults to SOMAXCONN and is configurable (ServerOptions::backlog).
//
// Lifecycle: construct with a registry whose models are all registered, then
// start()/stop(), or drain_and_stop() for a graceful drain. Responses are
// bit-identical across transports and replica counts: a request's result is
// a pure function of (checkpoint, PL array, seed, stream).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/framing.h"
#include "serve/batcher.h"
#include "serve/dispatcher.h"
#include "serve/endpoint.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/tenant.h"
#include "serve/threshold_service.h"

namespace flashgen::serve {

struct ServerOptions {
  /// Transport endpoint spec (see endpoint.h): "unix:/path", a bare path, or
  /// "tcp:host:port" ("tcp:127.0.0.1:0" picks a free port; read it back via
  /// endpoint()).
  std::string endpoint = "/tmp/flashgen_serve.sock";
  /// listen() backlog; -1 means SOMAXCONN. Bursts beyond the backlog are
  /// dropped by the kernel before accept ever sees them, so leave this at
  /// SOMAXCONN unless testing backlog behavior.
  int backlog = -1;
  BatchPolicy policy;
  /// ReplicaSupervisor knobs: wedge quarantine + restart (see dispatcher.h).
  SupervisorPolicy supervisor;
  /// Per-tenant token-bucket admission; rate 0 (default) = unlimited, a
  /// strict no-op on the request path.
  TenantPolicy tenant;
  /// Connection hygiene: evict connections that made no protocol progress
  /// (no complete inbound frame, no outbound write progress) for this long.
  /// Defeats slow-loris clients that drip bytes to look alive. 0 (default)
  /// disables. Connections with a response still owed are never idle-evicted.
  std::uint64_t idle_timeout_micros = 0;
  /// Cap on bytes buffered per connection — a partial inbound frame, or
  /// unflushed outbound responses the peer refuses to read. A connection
  /// over the cap is evicted with a typed kError + close. The default
  /// comfortably fits any legal frame (kMaxFrameBytes) on either side.
  std::size_t max_conn_buffered_bytes = 2 * static_cast<std::size_t>(kMaxFrameBytes);
  /// Cap on in-flight pipelined requests per connection; the frame that
  /// would exceed it evicts the connection (typed kError + close).
  std::size_t max_pipelined_requests = 4096;
  /// Read-threshold optimization knobs. One ThresholdService is created per
  /// condition-aware registry model; the optimizer's `side` is overridden
  /// with the model's row side. Queries against condition-unaware models are
  /// answered with a typed kError.
  ThresholdServiceOptions threshold;
};

/// Capped exponential backoff with deterministic jitter for Client retries
/// on typed sheds (kOverloaded / kRateLimited).
struct RetryPolicy {
  /// Total attempts including the first; <= 1 disables retry.
  int max_attempts = 5;
  std::uint64_t base_backoff_micros = 1'000;
  std::uint64_t max_backoff_micros = 250'000;
  /// Jitter stream seed; same seed => same backoff schedule (deterministic
  /// tests), different seeds desynchronize clients (no retry stampede).
  std::uint64_t seed = 0;
};

class Server {
 public:
  /// Binds the endpoint and creates one ReplicaDispatcher per registry
  /// entry (one batcher + executor thread per replica). The registry must
  /// outlive the server and must not change while it runs.
  Server(ModelRegistry& registry, ServerOptions options);
  /// Back-compat convenience: unix socket at `socket_path`.
  Server(ModelRegistry& registry, std::string socket_path, BatchPolicy policy = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the event loop in a background thread.
  void start();
  /// Stops the loop, closes every connection and the listener, joins threads.
  void stop();
  /// Graceful shutdown: closes every dispatcher's admission queue (new
  /// requests are answered kOverloaded, health probes kDraining), waits for
  /// in-flight work to complete and its responses to flush, then stop()s.
  void drain_and_stop();
  /// True between drain_and_stop() starting and the server being torn down.
  bool draining() const { return draining_.load(); }

  /// Canonical connectable endpoint spec; for "tcp:host:0" the bound port is
  /// substituted in.
  std::string endpoint() const;
  /// The bound TCP port (tcp transport only).
  std::uint16_t port() const;
  /// The unix socket path (unix transport only; back-compat accessor).
  const std::string& socket_path() const { return endpoint_.path; }

  ServeMetrics& metrics() { return metrics_; }

 private:
  // One pipelined response slot. Slots are created in request arrival order
  // and flushed strictly in that order once ready, so pipelined responses
  // can never overtake each other.
  struct Slot {
    bool ready = false;
    bool counts_as_active = false;  // a generate admitted into a dispatcher
    std::vector<std::uint8_t> frame;  // length-prefixed, ready to write
    std::chrono::steady_clock::time_point t0;  // request decode start
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    framing::FrameDecoder decoder;
    std::deque<Slot> slots;
    std::uint64_t head_seq = 0;  // sequence number of slots.front()
    std::uint64_t next_seq = 0;  // sequence number the next request gets
    std::vector<std::uint8_t> outbuf;
    std::size_t out_off = 0;
    bool want_write = false;  // EPOLLOUT armed
    bool peer_eof = false;    // read side closed; flush, then close
    int active_unflushed = 0;  // admitted generates encoded but not yet sent
    /// Last protocol progress (complete frame in, write progress out, or
    /// accept); the idle-timeout signal. Raw inbound bytes do NOT count —
    /// that would let a slow-loris client stay alive by dripping bytes.
    std::chrono::steady_clock::time_point last_activity{};
  };

  struct CompletionMsg {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;  // response payload (not yet framed)
    std::uint64_t infer_wait_micros = 0;
  };

  void run_loop();
  void on_listener_ready();
  void on_conn_readable(Conn& conn);
  void on_conn_writable(Conn& conn);
  void dispatch_frame(Conn& conn, std::vector<std::uint8_t> payload);
  void finish_slot(Conn& conn, std::uint64_t seq, std::vector<std::uint8_t> payload,
                   std::uint64_t infer_wait_micros);
  void flush_conn(Conn& conn);
  void drain_completions();
  void close_conn(std::uint64_t conn_id);
  void update_epoll(Conn& conn);
  void wake_loop();
  /// Hygiene close: counts serve.conn_evicted, optionally best-effort writes
  /// a framed kError(reason) first, then close_conn.
  void evict_conn(Conn& conn, const std::string& reason, bool send_error);
  /// Advances the idle wheel to `now`, evicting connections whose idle
  /// deadline passed and lazily re-bucketing the rest.
  void tick_idle_wheel();
  void schedule_idle_check(std::uint64_t conn_id,
                           std::chrono::steady_clock::time_point deadline,
                           std::chrono::steady_clock::time_point now);

  ModelRegistry& registry_;
  ServerOptions options_;
  Endpoint endpoint_;
  ServeMetrics metrics_;
  TenantGovernor governor_;

  // Hashed idle-timeout timer wheel (loop thread only). Each slot holds conn
  // ids due for an idle check when the wheel sweeps past; entries are lazy —
  // a closed conn is skipped, a conn active since scheduling is re-bucketed
  // at its new deadline instead of evicted.
  static constexpr std::size_t kWheelSlots = 64;
  std::vector<std::vector<std::uint64_t>> wheel_;
  std::size_t wheel_pos_ = 0;
  std::chrono::microseconds wheel_tick_{0};
  std::chrono::steady_clock::time_point wheel_last_tick_{};

  // Completions cross from executor threads into the loop through here.
  // Declared before dispatchers_: batcher destructors fail still-queued
  // requests through their completions, which push here.
  std::mutex completions_mutex_;
  std::deque<CompletionMsg> completions_;

  std::map<std::string, std::unique_ptr<ReplicaDispatcher>> dispatchers_;
  // Declared after dispatchers_ (so destroyed first): services sample
  // through their model's dispatcher. Only condition-aware models get one.
  std::map<std::string, std::unique_ptr<ThresholdService>> threshold_services_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions pending or stop requested
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> active_requests_{0};  // admitted generates awaiting flush
  std::thread loop_thread_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::chrono::steady_clock::time_point started_;
};

/// Blocking client for the flashgen-serve protocol; used by the load
/// generator and tests. One connection, not thread-safe. Accepts the same
/// endpoint specs as the server ("unix:/path", bare path, "tcp:host:port").
class Client {
 public:
  explicit Client(const std::string& endpoint_spec);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips one generate request. Throws Overloaded if the server
  /// answers kOverloaded, RateLimited if it answers kRateLimited; FG_CHECKs
  /// if it answers with a kError frame.
  GenerateResponse generate(const GenerateRequest& request);
  /// generate() with capped exponential backoff + jitter on the typed sheds
  /// (Overloaded / RateLimited): sleeps max(jittered backoff, the server's
  /// retry_after hint) between attempts, rethrows the last shed once
  /// max_attempts is exhausted. Other errors are not retried.
  GenerateResponse generate_with_retry(const GenerateRequest& request,
                                       const RetryPolicy& policy);
  /// Round-trips one read-threshold optimization query. Same typed errors
  /// as generate() (Overloaded / RateLimited / FG_CHECK on kError).
  ThresholdResponse threshold_query(const ThresholdQuery& query);
  /// Fetches the server's metrics JSON.
  std::string stats();
  /// Liveness probe: kReady while serving with a fully-healthy fleet,
  /// kDegraded with one or more replicas quarantined, kDraining during
  /// shutdown.
  HealthStatus health();

 private:
  int fd_ = -1;
};

}  // namespace flashgen::serve
