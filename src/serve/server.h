// Server: AF_UNIX front-end for the serving runtime.
//
// Listens on a filesystem socket, spawns one thread per connection, and
// routes kGenerate frames into the per-model RequestBatcher (one batcher and
// executor thread per registered model). Request errors are answered with a
// kError frame on the same connection; the connection survives.
//
// Lifecycle: construct with a registry whose models are all registered, then
// serve_forever() on the accept thread, or start()/stop() to run it in the
// background (tests, the demo binary).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace flashgen::serve {

class Server {
 public:
  /// Binds `socket_path` (unlinking any stale socket file first) and creates
  /// one RequestBatcher per registry entry. The registry must outlive the
  /// server and must not change while it runs.
  Server(ModelRegistry& registry, std::string socket_path, BatchPolicy policy = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the accept loop in a background thread.
  void start();
  /// Stops accepting, closes the listener, and joins all threads.
  void stop();
  /// Graceful shutdown: closes the listener and every batcher's admission
  /// queue (new requests are answered kOverloaded), waits for all in-flight
  /// work to complete, then stop()s. Health probes answer kDraining while the
  /// drain runs.
  void drain_and_stop();
  /// True between drain_and_stop() starting and the server being torn down.
  bool draining() const { return draining_.load(); }

  const std::string& socket_path() const { return socket_path_; }
  ServeMetrics& metrics() { return metrics_; }

 private:
  void accept_loop();
  void handle_connection(int fd);

  ModelRegistry& registry_;
  std::string socket_path_;
  BatchPolicy policy_;
  ServeMetrics metrics_;
  std::map<std::string, std::unique_ptr<RequestBatcher>> batchers_;

  std::atomic<int> listen_fd_{-1};  // stop() races with accept_loop()'s reads
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::vector<int> conn_fds_;  // open connection sockets; shut down in stop()
  std::atomic<int> active_requests_{0};  // generate requests between decode and reply
  std::chrono::steady_clock::time_point started_;
};

/// Blocking client for the flashgen-serve protocol; used by the load
/// generator and tests. One connection, not thread-safe.
class Client {
 public:
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips one generate request. Throws Overloaded if the server
  /// answers kOverloaded; FG_CHECKs if it answers with a kError frame.
  GenerateResponse generate(const GenerateRequest& request);
  /// Fetches the server's metrics JSON.
  std::string stats();
  /// Liveness probe: kReady while serving, kDraining during shutdown.
  HealthStatus health();

 private:
  int fd_ = -1;
};

}  // namespace flashgen::serve
