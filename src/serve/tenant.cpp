#include "serve/tenant.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace flashgen::serve {

namespace {
/// Bound on distinct tenants tracked at once. A hostile client spraying
/// random tenant ids must not grow the table without limit; past the bound
/// an arbitrary bucket is recycled. Evicting a bucket forgives at most
/// `burst` requests for one tenant — an acceptable trade against unbounded
/// memory, and unreachable for any realistic tenant population.
constexpr std::size_t kMaxTrackedTenants = 65536;
}  // namespace

TenantGovernor::TenantGovernor(TenantPolicy policy) : policy_(policy) {
  FG_CHECK(std::isfinite(policy_.rate_per_sec) && policy_.rate_per_sec >= 0.0,
           "TenantGovernor: bad rate " << policy_.rate_per_sec);
  burst_ = policy_.burst > 0.0 ? policy_.burst : std::max(policy_.rate_per_sec, 1.0);
}

TenantGovernor::Decision TenantGovernor::admit(std::uint32_t tenant_id,
                                               std::chrono::steady_clock::time_point now) {
  Decision decision;
  if (!enabled()) return decision;  // unlimited: strict no-op, no lock

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(tenant_id);
  if (it == buckets_.end()) {
    if (buckets_.size() >= kMaxTrackedTenants) buckets_.erase(buckets_.begin());
    Bucket fresh;
    fresh.tokens = burst_;  // new tenants start with a full bucket
    fresh.last = now;
    it = buckets_.emplace(tenant_id, fresh).first;
  }
  Bucket& bucket = it->second;

  const double dt = std::max(
      0.0, std::chrono::duration_cast<std::chrono::duration<double>>(now - bucket.last).count());
  bucket.tokens = std::min(burst_, bucket.tokens + dt * policy_.rate_per_sec);
  bucket.last = now;

  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return decision;
  }
  decision.admitted = false;
  const double deficit_seconds = (1.0 - bucket.tokens) / policy_.rate_per_sec;
  decision.retry_after_micros =
      static_cast<std::uint64_t>(std::ceil(deficit_seconds * 1e6));
  return decision;
}

std::size_t TenantGovernor::tracked_tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

}  // namespace flashgen::serve
