#include "serve/endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace flashgen::serve {

namespace {

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FG_CHECK(path.size() < sizeof(addr.sun_path),
           "socket path too long (" << path.size() << " bytes): " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (endpoint.host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else {
    FG_CHECK(::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1,
             "bad TCP host (want an IPv4 address): " << endpoint.host);
  }
  return addr;
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: not fatal if the kernel refuses, only slower.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  FG_CHECK(!spec.empty(), "empty endpoint spec");
  Endpoint endpoint;
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    FG_CHECK(colon != std::string::npos, "bad TCP endpoint (want tcp:host:port): " << spec);
    endpoint.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    FG_CHECK(!port_str.empty() && port_str.find_first_not_of("0123456789") == std::string::npos,
             "bad TCP port in endpoint: " << spec);
    const unsigned long port = std::strtoul(port_str.c_str(), nullptr, 10);
    FG_CHECK(port <= 65535, "TCP port out of range: " << spec);
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
  }
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  FG_CHECK(!endpoint.path.empty(), "empty unix socket path: " << spec);
  return endpoint;
}

std::string to_string(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) return "unix:" + endpoint.path;
  return "tcp:" + endpoint.host + ":" + std::to_string(endpoint.port);
}

int listen_endpoint(const Endpoint& endpoint, int backlog) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    FG_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
    ::unlink(endpoint.path.c_str());
    sockaddr_un addr = unix_address(endpoint.path);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      FG_CHECK(false, "bind(" << endpoint.path << ") failed: " << std::strerror(err));
    }
    if (::listen(fd, backlog) != 0) {
      const int err = errno;
      ::close(fd);
      FG_CHECK(false, "listen(" << endpoint.path << ") failed: " << std::strerror(err));
    }
    return fd;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FG_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = tcp_address(endpoint);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    FG_CHECK(false, "bind(" << to_string(endpoint) << ") failed: " << std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    FG_CHECK(false, "listen(" << to_string(endpoint) << ") failed: " << std::strerror(err));
  }
  return fd;
}

int connect_endpoint(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    FG_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
    sockaddr_un addr = unix_address(endpoint.path);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      FG_CHECK(false, "connect(" << endpoint.path << ") failed: " << std::strerror(err));
    }
    return fd;
  }

  Endpoint target = endpoint;
  if (target.host.empty()) target.host = "127.0.0.1";
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FG_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_in addr = tcp_address(target);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    FG_CHECK(false, "connect(" << to_string(target) << ") failed: " << std::strerror(err));
  }
  set_nodelay(fd);
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  FG_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
           "getsockname() failed: " << std::strerror(errno));
  FG_CHECK(addr.sin_family == AF_INET, "bound_port: not a TCP socket");
  return ntohs(addr.sin_port);
}

}  // namespace flashgen::serve
