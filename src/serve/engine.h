// InferenceEngine: forward-only execution of a trained GenerativeModel.
//
// The engine is the serving counterpart of GenerativeModel::generate(). It
// runs prepare_generation() once at construction and then executes batched
// sample_rows() calls under tensor::InferenceModeGuard, which
//   * disables gradient recording (no graph nodes, no type-erased backwards),
//   * draws op-result buffers from the executing thread's WorkspacePool so a
//     steady-state forward pass over fixed shapes does zero heap allocation,
//   * switches training-mode batch norm to per-sample statistics, making row
//     i of a batch bit-identical to the same request run alone.
//
// Determinism contract: generate_into(pl, rngs, out) row i equals
// model.generate(row_i, rng_i) bit-for-bit when rng_i starts from the same
// state as rngs[i].
//
// Threading: an engine instance is not thread-safe; the request batcher runs
// one executor thread per engine. The model must not be trained while an
// engine wraps it.
#pragma once

#include <cstdint>
#include <span>

#include "models/generative_model.h"
#include "tensor/workspace.h"

namespace flashgen::serve {

using models::Tensor;

struct EngineStats {
  std::uint64_t batches = 0;  // sample_rows calls executed
  std::uint64_t rows = 0;     // total rows across those calls
};

class InferenceEngine {
 public:
  /// Wraps a trained model and puts it in its generation configuration.
  /// The engine holds a reference; the model must outlive it.
  explicit InferenceEngine(models::GenerativeModel& model);

  /// Primes the executing thread's WorkspacePool for the shapes reached by
  /// `pl`-sized batches: runs `rounds` throwaway forward passes. Seeds are
  /// arbitrary (results are discarded).
  void warmup(const Tensor& pl, int rounds = 2);

  /// Batched forward-only sampling; row i consumes rngs[i] only. The result
  /// tensor is pooled: it returns its buffer to this thread's pool when
  /// destroyed, so destroy it on the calling thread (or use generate_into).
  Tensor sample_rows(const Tensor& pl, std::span<flashgen::Rng> rngs);

  /// sample_rows() + copy into a caller-owned buffer of pl.numel() floats
  /// (the generated array has the input's shape). Keeps pooled buffers on
  /// the executing thread regardless of where `out` is consumed.
  void generate_into(const Tensor& pl, std::span<flashgen::Rng> rngs, std::span<float> out);

  /// Conditioned flavors: row i is generated at conditions[i] (raw physical
  /// units; the model normalizes). Requires model().condition_aware(). The
  /// determinism contract extends per row: a row at condition c matches the
  /// same request run alone at c, regardless of its batch neighbors.
  Tensor sample_rows_at(const Tensor& pl, std::span<const data::Condition> conditions,
                        std::span<flashgen::Rng> rngs);
  void generate_into_at(const Tensor& pl, std::span<const data::Condition> conditions,
                        std::span<flashgen::Rng> rngs, std::span<float> out);

  const EngineStats& stats() const { return stats_; }
  models::GenerativeModel& model() { return model_; }

 private:
  models::GenerativeModel& model_;
  EngineStats stats_;
};

}  // namespace flashgen::serve
