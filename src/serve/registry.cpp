#include "serve/registry.h"

#include <utility>

#include "common/error.h"

namespace flashgen::serve {

using tensor::Index;

namespace {
void warmup_engine(InferenceEngine& engine, const tensor::Shape& row_shape,
                   std::size_t warmup_batch) {
  if (warmup_batch == 0) return;
  std::vector<Index> dims;
  dims.push_back(static_cast<Index>(warmup_batch));
  for (auto d : row_shape.dims()) dims.push_back(d);
  engine.warmup(Tensor::zeros(tensor::Shape(dims)));
}
}  // namespace

std::vector<InferenceEngine*> ModelRegistry::Entry::engines() {
  std::vector<InferenceEngine*> out;
  out.reserve(replicas.size());
  for (Replica& r : replicas) out.push_back(r.engine.get());
  return out;
}

void ModelRegistry::add(const std::string& name, std::unique_ptr<models::GenerativeModel> model,
                        const tensor::Shape& row_shape, std::size_t warmup_batch) {
  FG_CHECK(!name.empty(), "ModelRegistry: empty model name");
  FG_CHECK(entries_.count(name) == 0, "ModelRegistry: duplicate model name " << name);
  FG_CHECK(model != nullptr, "ModelRegistry: null model for " << name);

  Entry entry;
  Replica replica;
  replica.model = std::move(model);
  replica.engine = std::make_unique<InferenceEngine>(*replica.model);
  entry.row_shape = row_shape;
  warmup_engine(*replica.engine, row_shape, warmup_batch);
  entry.replicas.push_back(std::move(replica));

  entries_.emplace(name, std::move(entry));
}

void ModelRegistry::add_replica(const std::string& name,
                                std::unique_ptr<models::GenerativeModel> model,
                                std::size_t warmup_batch) {
  FG_CHECK(model != nullptr, "ModelRegistry: null replica for " << name);
  Entry& entry = at(name);
  Replica replica;
  replica.model = std::move(model);
  replica.engine = std::make_unique<InferenceEngine>(*replica.model);
  warmup_engine(*replica.engine, entry.row_shape, warmup_batch);
  entry.replicas.push_back(std::move(replica));
}

void ModelRegistry::load(const std::string& name, core::ModelKind kind,
                         const models::NetworkConfig& config,
                         const std::string& checkpoint_path, std::size_t warmup_batch,
                         std::size_t replicas) {
  FG_CHECK(replicas >= 1, "ModelRegistry: need at least one replica for " << name);
  const auto s = static_cast<Index>(config.array_size);
  for (std::size_t r = 0; r < replicas; ++r) {
    auto model = core::make_model(kind, config, /*seed=*/0);
    model->load(checkpoint_path);
    if (r == 0) {
      add(name, std::move(model), tensor::Shape({1, s, s}), warmup_batch);
    } else {
      add_replica(name, std::move(model), warmup_batch);
    }
  }
}

InferenceEngine& ModelRegistry::rebuild_replica(const std::string& name, std::size_t replica) {
  Entry& entry = at(name);
  FG_CHECK(replica < entry.replicas.size(),
           "ModelRegistry: rebuild of replica " << replica << " but " << name << " has "
                                                << entry.replicas.size());
  Replica& r = entry.replicas[replica];
  r.engine = std::make_unique<InferenceEngine>(*r.model);
  return *r.engine;
}

ModelRegistry::Entry& ModelRegistry::at(const std::string& name) {
  auto it = entries_.find(name);
  FG_CHECK(it != entries_.end(), "ModelRegistry: unknown model " << name);
  return it->second;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace flashgen::serve
