#include "serve/registry.h"

#include <utility>

#include "common/error.h"

namespace flashgen::serve {

using tensor::Index;

void ModelRegistry::add(const std::string& name, std::unique_ptr<models::GenerativeModel> model,
                        const tensor::Shape& row_shape, std::size_t warmup_batch) {
  FG_CHECK(!name.empty(), "ModelRegistry: empty model name");
  FG_CHECK(entries_.count(name) == 0, "ModelRegistry: duplicate model name " << name);
  FG_CHECK(model != nullptr, "ModelRegistry: null model for " << name);

  Entry entry;
  entry.model = std::move(model);
  entry.engine = std::make_unique<InferenceEngine>(*entry.model);
  entry.row_shape = row_shape;

  if (warmup_batch > 0) {
    std::vector<Index> dims;
    dims.push_back(static_cast<Index>(warmup_batch));
    for (auto d : row_shape.dims()) dims.push_back(d);
    entry.engine->warmup(Tensor::zeros(tensor::Shape(dims)));
  }

  entries_.emplace(name, std::move(entry));
}

void ModelRegistry::load(const std::string& name, core::ModelKind kind,
                         const models::NetworkConfig& config,
                         const std::string& checkpoint_path, std::size_t warmup_batch) {
  auto model = core::make_model(kind, config, /*seed=*/0);
  model->load(checkpoint_path);
  const auto s = static_cast<Index>(config.array_size);
  add(name, std::move(model), tensor::Shape({1, s, s}), warmup_batch);
}

ModelRegistry::Entry& ModelRegistry::at(const std::string& name) {
  auto it = entries_.find(name);
  FG_CHECK(it != entries_.end(), "ModelRegistry: unknown model " << name);
  return it->second;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace flashgen::serve
