#include "serve/threshold_service.h"

#include <future>
#include <sstream>
#include <utility>

#include "common/error.h"

namespace flashgen::serve {

std::vector<std::vector<float>> DispatcherSampler::sample(
    std::span<const thresholds::RowRequest> rows, std::uint64_t seed,
    const data::Condition& condition) {
  // Fan the wave out across the fleet, then collect in request order. Each
  // row's voltages depend only on (weights, PL row, seed, stream, condition),
  // so the routing decisions are invisible in the result. A shed or failed
  // row throws out of get() and fails the whole query, typed.
  std::vector<ResponseFuture> futures;
  futures.reserve(rows.size());
  for (const auto& row : rows) {
    futures.push_back(dispatcher_.submit(row.program_levels, seed, row.stream,
                                         /*deadline_micros=*/0, condition));
  }
  std::vector<std::vector<float>> out;
  out.reserve(rows.size());
  for (auto& future : futures) out.push_back(future.get());
  return out;
}

ThresholdService::ThresholdService(ReplicaDispatcher& dispatcher, ThresholdServiceOptions options)
    : sampler_(dispatcher), optimizer_(sampler_, options.optimizer), options_(std::move(options)) {
  worker_ = std::thread([this] { run(); });
}

ThresholdService::~ThresholdService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ThresholdService::submit_async(const data::Condition& condition, Completion done) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw Overloaded("threshold service draining");
    const std::size_t outstanding = queue_.size() + static_cast<std::size_t>(in_flight_);
    if (options_.max_queue > 0 && outstanding >= options_.max_queue) {
      std::ostringstream os;
      os << "threshold admission queue full (" << outstanding << "/" << options_.max_queue << ")";
      throw Overloaded(os.str());
    }
    queue_.push_back(Pending{condition, std::move(done)});
  }
  cv_.notify_one();
}

thresholds::ThresholdReport ThresholdService::query(const data::Condition& condition) {
  std::promise<thresholds::ThresholdReport> promise;
  auto future = promise.get_future();
  submit_async(condition,
               [&promise](thresholds::ThresholdReport report, std::exception_ptr error) {
                 if (error) {
                   promise.set_exception(error);
                 } else {
                   promise.set_value(std::move(report));
                 }
               });
  return future.get();
}

void ThresholdService::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
}

void ThresholdService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThresholdService::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + static_cast<std::size_t>(in_flight_);
}

void ThresholdService::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    // Admitted queries are always answered: even after stop_, the queue
    // drains through completions before the worker exits.
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();

    thresholds::ThresholdReport report;
    std::exception_ptr error;
    try {
      report = optimizer_.optimize(pending.condition);
    } catch (...) {
      error = std::current_exception();
    }
    pending.done(std::move(report), error);

    lock.lock();
    --in_flight_;
    idle_cv_.notify_all();
  }
}

ThresholdResponse to_response(const thresholds::ThresholdReport& report) {
  ThresholdResponse response;
  for (std::size_t k = 0; k < report.thresholds.size(); ++k)
    response.thresholds[k] = report.thresholds[k];
  for (std::size_t p = 0; p < report.page_ber.size(); ++p)
    response.page_ber[p] = report.page_ber[p];
  response.level_error_rate = report.level_error_rate;
  response.mutual_information_bits = report.mutual_information_bits;
  response.sample_cells = report.sample_cells;
  response.from_cache = report.from_cache;
  return response;
}

}  // namespace flashgen::serve
