// flashgen-serve wire protocol: length-prefixed binary frames over a stream
// socket (unix or TCP — the frame layout is transport-agnostic).
//
// Requests may be pipelined: a client can write any number of frames before
// reading, and the server answers each connection's frames strictly in
// arrival order. Nothing in the payload identifies the request; ordering IS
// the correlation mechanism, so both sides must preserve it.
//
// Frame layout (all integers little-endian):
//   u32 payload_len | payload
// Payload:
//   u8 type | type-specific body
//
// Message bodies:
//   kGenerate (client -> server, protocol v1):
//     u32 model_name_len | model_name bytes
//     u64 seed | u64 stream          -- Rng::from_stream(seed, stream)
//     u64 deadline_micros            -- relative budget; 0 = no deadline
//     u32 side                       -- PL array is side x side
//     f32 pl[side * side]           -- normalized program levels, row-major
//   kGenerateV2 (client -> server, protocol v2):
//     u32 tenant_id                  -- token-bucket admission key; 0 = the
//                                       anonymous/default tenant
//     ...then the v1 body verbatim (model, seed, stream, deadline, side, pl)
//     -- v2 is a pure header extension: servers decode both types (v1 frames
//        map to tenant 0), so v1 clients interoperate unchanged against a v2
//        server. encode_generate_request emits v2; _v1 is kept for legacy
//        peers and interop tests.
//   kGenerateOk (server -> client):
//     u32 side | f32 voltages[side * side]
//   kStats (client -> server): empty body
//   kStatsOk (server -> client): u32 json_len | json bytes
//   kError (server -> client): u32 message_len | message bytes
//   kOverloaded (server -> client): u32 message_len | message bytes
//     -- typed rejection: the admission queue is full or draining; the
//        request was NOT executed and can be retried elsewhere/later
//   kRateLimited (server -> client):
//     u64 retry_after_micros | u32 message_len | message bytes
//     -- typed per-tenant rejection: the tenant's token bucket is empty. The
//        request was NOT executed; retrying before retry_after_micros will
//        be shed again.
//   kHealth (client -> server): empty body
//   kHealthOk (server -> client): u8 status (HealthStatus)
//   kThresholdQuery (client -> server, protocol v2 framing):
//     u32 tenant_id                  -- same admission semantics as
//                                       kGenerateV2 (token buckets, queue
//                                       bounds -> kRateLimited/kOverloaded)
//     u32 model_name_len | model_name bytes
//     f64 pe_cycles | f64 retention_hours  -- raw wear condition (f64 = IEEE
//                                       bits via u64, little-endian)
//   kThresholdOk (server -> client):
//     f64 thresholds[7]              -- strictly increasing read points
//     f64 page_ber[3]                -- est. raw BER per Gray page (L/M/U)
//     f64 level_error_rate | f64 mutual_information_bits
//     u64 sample_cells | u8 from_cache
//     -- the reply is a pure function of (checkpoint, condition, server
//        optimizer config): from_cache only reports whether the LRU served
//        it, every other bit is identical cold or warm
//
// Readers are bounds-checked: a truncated or oversized frame raises
// FG_CHECK instead of reading out of bounds, and frame bodies are read in
// bounded chunks so a hostile length prefix cannot force a large allocation
// up front.
//
// Frame transport (length prefix, MSG_NOSIGNAL, chunked reads, the
// "socket_reset" fault point) lives in common/framing.{h,cpp}, shared with
// the distributed-training collectives; this header re-exports it under the
// serve namespace so protocol users have a single include. Non-blocking
// peers (the epoll server, the open-loop loadgen) reassemble frames from
// partial reads with framing::FrameDecoder instead of the blocking
// read_frame/write_frame pair.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/framing.h"

namespace flashgen::serve {

enum class MessageType : std::uint8_t {
  kGenerate = 1,  // protocol v1 request (no tenant header)
  kGenerateOk = 2,
  kStats = 3,
  kStatsOk = 4,
  kError = 5,
  kOverloaded = 6,
  kHealth = 7,
  kHealthOk = 8,
  kGenerateV2 = 9,    // protocol v2 request: u32 tenant_id prepended
  kRateLimited = 10,  // typed per-tenant shed with retry_after_micros
  kThresholdQuery = 11,  // read-threshold optimization at a wear condition
  kThresholdOk = 12,
};

/// Liveness answer to a kHealth probe.
enum class HealthStatus : std::uint8_t {
  kReady = 1,     // accepting work, full fleet healthy
  kDraining = 2,  // shutting down: finishing in-flight work, rejecting new
  kDegraded = 3,  // serving, but one or more replicas are quarantined
};

/// Typed per-tenant admission rejection: the tenant's token bucket was empty.
/// Carries the server's hint for when a retry can be admitted.
class RateLimited : public flashgen::Error {
 public:
  RateLimited(const std::string& what, std::uint64_t retry_after_micros)
      : flashgen::Error(what), retry_after_micros_(retry_after_micros) {}

  std::uint64_t retry_after_micros() const { return retry_after_micros_; }

 private:
  std::uint64_t retry_after_micros_;
};

/// Refuse frames above this size (64 MiB) to bound allocation on bad input.
/// One shared cap for every frame consumer (serve + dist).
inline constexpr std::uint32_t kMaxFrameBytes = framing::kMaxFrameBytes;

struct GenerateRequest {
  std::string model;
  /// Admission key for per-tenant token buckets (protocol v2 header field);
  /// v1 frames decode as tenant 0. Invisible in the generated bits.
  std::uint32_t tenant_id = 0;
  std::uint64_t seed = 0;
  std::uint64_t stream = 0;
  /// Relative completion budget in microseconds, measured from server-side
  /// admission; 0 means no deadline. Expired requests are shed with kError
  /// ("deadline exceeded") instead of occupying batch slots.
  std::uint64_t deadline_micros = 0;
  std::uint32_t side = 0;
  std::vector<float> program_levels;  // side * side floats
};

struct GenerateResponse {
  std::uint32_t side = 0;
  std::vector<float> voltages;  // side * side floats
};

/// Read-threshold optimization request: "where should the read points sit
/// for a block in this wear state?". The condition rides in raw physical
/// units; quantization to cache buckets is the server's policy.
struct ThresholdQuery {
  std::string model;
  std::uint32_t tenant_id = 0;
  double pe_cycles = 0.0;
  double retention_hours = 0.0;
};

/// Wire mirror of thresholds::ThresholdReport (kept dependency-free so the
/// protocol layer stays self-contained).
struct ThresholdResponse {
  std::array<double, 7> thresholds{};
  std::array<double, 3> page_ber{};  // Lower/Middle/Upper Gray pages
  double level_error_rate = 0.0;
  double mutual_information_bits = 0.0;
  std::uint64_t sample_cells = 0;
  bool from_cache = false;
};

/// Append-only little-endian payload builder.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bytes(const void* data, std::size_t size);
  void put_f64(double v);  // IEEE-754 bits as a little-endian u64
  void put_string(const std::string& s);     // u32 length + bytes
  void put_floats(const std::vector<float>& v);  // raw f32s, no length

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked little-endian payload reader over a borrowed buffer.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();                               // IEEE-754 bits from a u64
  std::string get_string();                       // u32 length + bytes
  std::vector<float> get_floats(std::size_t count);  // raw f32s
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- payload encoding (u8 type + body; no length prefix) ----
/// Emits a protocol v2 (kGenerateV2) request carrying request.tenant_id.
std::vector<std::uint8_t> encode_generate_request(const GenerateRequest& request);
/// Emits a protocol v1 (kGenerate) request; the tenant id cannot ride in a
/// v1 frame and is dropped (the server maps v1 to tenant 0). Kept for
/// legacy peers and the v1-interop tests.
std::vector<std::uint8_t> encode_generate_request_v1(const GenerateRequest& request);
std::vector<std::uint8_t> encode_generate_response(const GenerateResponse& response);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats_response(const std::string& json);
std::vector<std::uint8_t> encode_error(const std::string& message);
std::vector<std::uint8_t> encode_overloaded(const std::string& message);
std::vector<std::uint8_t> encode_rate_limited(std::uint64_t retry_after_micros,
                                              const std::string& message);
std::vector<std::uint8_t> encode_health_request();
std::vector<std::uint8_t> encode_health_response(HealthStatus status);
std::vector<std::uint8_t> encode_threshold_query(const ThresholdQuery& query);
std::vector<std::uint8_t> encode_threshold_response(const ThresholdResponse& response);

struct RateLimitedInfo {
  std::uint64_t retry_after_micros = 0;
  std::string message;
};

MessageType peek_type(const std::vector<std::uint8_t>& payload);
/// Decodes either generation (kGenerate -> tenant 0, kGenerateV2 -> carried
/// tenant id); the rest of the body is layout-identical.
GenerateRequest decode_generate_request(const std::vector<std::uint8_t>& payload);
GenerateResponse decode_generate_response(const std::vector<std::uint8_t>& payload);
std::string decode_stats_response(const std::vector<std::uint8_t>& payload);
std::string decode_error(const std::vector<std::uint8_t>& payload);
std::string decode_overloaded(const std::vector<std::uint8_t>& payload);
RateLimitedInfo decode_rate_limited(const std::vector<std::uint8_t>& payload);
HealthStatus decode_health_response(const std::vector<std::uint8_t>& payload);
ThresholdQuery decode_threshold_query(const std::vector<std::uint8_t>& payload);
ThresholdResponse decode_threshold_response(const std::vector<std::uint8_t>& payload);

// ---- framing over a file descriptor (blocking, EINTR-safe) ----
// Thin forwarders to the shared transport in common/framing.h.
/// Writes u32 length + payload. Throws on I/O error.
inline void write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  framing::write_frame(fd, payload);
}
/// Reads one frame into `payload`. Returns false on clean EOF before the
/// first byte; throws on mid-frame EOF, I/O error, or oversized frame.
inline bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  return framing::read_frame(fd, payload);
}

}  // namespace flashgen::serve
