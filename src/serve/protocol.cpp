#include "serve/protocol.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace flashgen::serve {

void ByteWriter::put_u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

void ByteWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(s.data(), s.size());
}

void ByteWriter::put_floats(const std::vector<float>& v) {
  put_bytes(v.data(), v.size() * sizeof(float));
}

std::uint8_t ByteReader::get_u8() {
  FG_CHECK(pos_ + 1 <= size_, "protocol: truncated payload (u8 at " << pos_ << "/" << size_ << ")");
  return data_[pos_++];
}

std::uint32_t ByteReader::get_u32() {
  FG_CHECK(pos_ + 4 <= size_, "protocol: truncated payload (u32 at " << pos_ << "/" << size_ << ")");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::get_u64() {
  FG_CHECK(pos_ + 8 <= size_, "protocol: truncated payload (u64 at " << pos_ << "/" << size_ << ")");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string ByteReader::get_string() {
  const auto len = get_u32();
  FG_CHECK(pos_ + len <= size_,
           "protocol: truncated payload (string of " << len << " at " << pos_ << "/" << size_ << ")");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

std::vector<float> ByteReader::get_floats(std::size_t count) {
  const std::size_t bytes = count * sizeof(float);
  FG_CHECK(pos_ + bytes <= size_,
           "protocol: truncated payload (" << count << " floats at " << pos_ << "/" << size_ << ")");
  std::vector<float> v(count);
  std::memcpy(v.data(), data_ + pos_, bytes);
  pos_ += bytes;
  return v;
}

namespace {
// Everything after the version-dependent header is layout-identical in v1
// and v2 frames.
void put_generate_body(ByteWriter& w, const GenerateRequest& request) {
  FG_CHECK(request.program_levels.size() ==
               static_cast<std::size_t>(request.side) * request.side,
           "generate request: " << request.program_levels.size() << " levels for side "
                                << request.side);
  w.put_string(request.model);
  w.put_u64(request.seed);
  w.put_u64(request.stream);
  w.put_u64(request.deadline_micros);
  w.put_u32(request.side);
  w.put_floats(request.program_levels);
}
}  // namespace

std::vector<std::uint8_t> encode_generate_request(const GenerateRequest& request) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kGenerateV2));
  w.put_u32(request.tenant_id);
  put_generate_body(w, request);
  return w.bytes();
}

std::vector<std::uint8_t> encode_generate_request_v1(const GenerateRequest& request) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kGenerate));
  put_generate_body(w, request);
  return w.bytes();
}

std::vector<std::uint8_t> encode_generate_response(const GenerateResponse& response) {
  FG_CHECK(response.voltages.size() == static_cast<std::size_t>(response.side) * response.side,
           "generate response: " << response.voltages.size() << " voltages for side "
                                 << response.side);
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kGenerateOk));
  w.put_u32(response.side);
  w.put_floats(response.voltages);
  return w.bytes();
}

std::vector<std::uint8_t> encode_stats_request() {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kStats));
  return w.bytes();
}

std::vector<std::uint8_t> encode_stats_response(const std::string& json) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kStatsOk));
  w.put_string(json);
  return w.bytes();
}

std::vector<std::uint8_t> encode_error(const std::string& message) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kError));
  w.put_string(message);
  return w.bytes();
}

std::vector<std::uint8_t> encode_overloaded(const std::string& message) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kOverloaded));
  w.put_string(message);
  return w.bytes();
}

std::vector<std::uint8_t> encode_rate_limited(std::uint64_t retry_after_micros,
                                              const std::string& message) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kRateLimited));
  w.put_u64(retry_after_micros);
  w.put_string(message);
  return w.bytes();
}

std::vector<std::uint8_t> encode_health_request() {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kHealth));
  return w.bytes();
}

std::vector<std::uint8_t> encode_health_response(HealthStatus status) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kHealthOk));
  w.put_u8(static_cast<std::uint8_t>(status));
  return w.bytes();
}

std::vector<std::uint8_t> encode_threshold_query(const ThresholdQuery& query) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kThresholdQuery));
  w.put_u32(query.tenant_id);
  w.put_string(query.model);
  w.put_f64(query.pe_cycles);
  w.put_f64(query.retention_hours);
  return w.bytes();
}

std::vector<std::uint8_t> encode_threshold_response(const ThresholdResponse& response) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(MessageType::kThresholdOk));
  for (double t : response.thresholds) w.put_f64(t);
  for (double ber : response.page_ber) w.put_f64(ber);
  w.put_f64(response.level_error_rate);
  w.put_f64(response.mutual_information_bits);
  w.put_u64(response.sample_cells);
  w.put_u8(response.from_cache ? 1 : 0);
  return w.bytes();
}

MessageType peek_type(const std::vector<std::uint8_t>& payload) {
  FG_CHECK(!payload.empty(), "protocol: empty payload");
  return static_cast<MessageType>(payload[0]);
}

GenerateRequest decode_generate_request(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  const auto type = static_cast<MessageType>(r.get_u8());
  FG_CHECK(type == MessageType::kGenerate || type == MessageType::kGenerateV2,
           "protocol: not a generate request");
  GenerateRequest request;
  if (type == MessageType::kGenerateV2) request.tenant_id = r.get_u32();
  request.model = r.get_string();
  request.seed = r.get_u64();
  request.stream = r.get_u64();
  request.deadline_micros = r.get_u64();
  request.side = r.get_u32();
  FG_CHECK(request.side > 0 && request.side <= 4096, "generate request: bad side " << request.side);
  request.program_levels = r.get_floats(static_cast<std::size_t>(request.side) * request.side);
  return request;
}

GenerateResponse decode_generate_response(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  FG_CHECK(static_cast<MessageType>(r.get_u8()) == MessageType::kGenerateOk,
           "protocol: not a generate response");
  GenerateResponse response;
  response.side = r.get_u32();
  FG_CHECK(response.side > 0 && response.side <= 4096,
           "generate response: bad side " << response.side);
  response.voltages = r.get_floats(static_cast<std::size_t>(response.side) * response.side);
  return response;
}

std::string decode_stats_response(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  FG_CHECK(static_cast<MessageType>(r.get_u8()) == MessageType::kStatsOk,
           "protocol: not a stats response");
  return r.get_string();
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  FG_CHECK(static_cast<MessageType>(r.get_u8()) == MessageType::kError,
           "protocol: not an error message");
  return r.get_string();
}

std::string decode_overloaded(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  FG_CHECK(static_cast<MessageType>(r.get_u8()) == MessageType::kOverloaded,
           "protocol: not an overloaded message");
  return r.get_string();
}

RateLimitedInfo decode_rate_limited(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  FG_CHECK(static_cast<MessageType>(r.get_u8()) == MessageType::kRateLimited,
           "protocol: not a rate-limited message");
  RateLimitedInfo info;
  info.retry_after_micros = r.get_u64();
  info.message = r.get_string();
  return info;
}

HealthStatus decode_health_response(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  FG_CHECK(static_cast<MessageType>(r.get_u8()) == MessageType::kHealthOk,
           "protocol: not a health response");
  const auto status = r.get_u8();
  FG_CHECK(status == static_cast<std::uint8_t>(HealthStatus::kReady) ||
               status == static_cast<std::uint8_t>(HealthStatus::kDraining) ||
               status == static_cast<std::uint8_t>(HealthStatus::kDegraded),
           "protocol: bad health status " << static_cast<int>(status));
  return static_cast<HealthStatus>(status);
}

ThresholdQuery decode_threshold_query(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  FG_CHECK(static_cast<MessageType>(r.get_u8()) == MessageType::kThresholdQuery,
           "protocol: not a threshold query");
  ThresholdQuery query;
  query.tenant_id = r.get_u32();
  query.model = r.get_string();
  query.pe_cycles = r.get_f64();
  query.retention_hours = r.get_f64();
  return query;
}

ThresholdResponse decode_threshold_response(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  FG_CHECK(static_cast<MessageType>(r.get_u8()) == MessageType::kThresholdOk,
           "protocol: not a threshold response");
  ThresholdResponse response;
  for (double& t : response.thresholds) t = r.get_f64();
  for (double& ber : response.page_ber) ber = r.get_f64();
  response.level_error_rate = r.get_f64();
  response.mutual_information_bits = r.get_f64();
  response.sample_cells = r.get_u64();
  const auto from_cache = r.get_u8();
  FG_CHECK(from_cache <= 1, "threshold response: bad from_cache " << static_cast<int>(from_cache));
  response.from_cache = from_cache == 1;
  return response;
}

}  // namespace flashgen::serve
