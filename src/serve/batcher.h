// RequestBatcher: coalesces concurrent single-array sampling requests into
// batched InferenceEngine calls.
//
// Requests arrive from any thread via submit(); a single executor thread
// drains the queue. A batch closes when it reaches max_batch_size, or when
// max_wait_micros have elapsed since its oldest request was enqueued — so an
// isolated request never waits longer than max_wait_micros for company.
//
// Batching is invisible in the results: request i carries its own RNG stream
// (Rng::from_stream(seed, stream)) and the engine runs per-sample batch-norm
// statistics, so the voltages a request receives are bit-identical whether
// it ran alone or was coalesced into a full batch.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.h"
#include "serve/metrics.h"
#include "tensor/shape.h"

namespace flashgen::serve {

struct BatchPolicy {
  std::size_t max_batch_size = 8;
  std::uint64_t max_wait_micros = 2000;
};

class RequestBatcher {
 public:
  /// `row_shape` is the shape of one sample without the batch dimension,
  /// e.g. (1, S, S) for an S x S PL array. `metrics` may be null.
  RequestBatcher(InferenceEngine& engine, tensor::Shape row_shape, BatchPolicy policy,
                 ServeMetrics* metrics = nullptr);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueues one sample (row_shape.numel() floats of normalized program
  /// levels). The future yields the generated voltages, or rethrows the
  /// engine's error.
  std::future<std::vector<float>> submit(std::vector<float> program_levels, std::uint64_t seed,
                                         std::uint64_t stream);

  const tensor::Shape& row_shape() const { return row_shape_; }
  const BatchPolicy& policy() const { return policy_; }

  /// Blocks until every request enqueued before the call has been executed.
  void drain();

 private:
  struct Pending {
    std::vector<float> program_levels;
    std::uint64_t seed;
    std::uint64_t stream;
    std::promise<std::vector<float>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void run();
  void execute_batch(std::vector<Pending> batch);

  InferenceEngine& engine_;
  tensor::Shape row_shape_;
  BatchPolicy policy_;
  ServeMetrics* metrics_;

  std::mutex mutex_;
  std::condition_variable cv_;        // wakes the executor
  std::condition_variable drained_;   // wakes drain() waiters
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;  // rows handed to the engine, not yet fulfilled
  bool stop_ = false;
  std::thread executor_;
};

}  // namespace flashgen::serve
