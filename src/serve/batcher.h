// RequestBatcher: coalesces concurrent single-array sampling requests into
// batched InferenceEngine calls.
//
// Requests arrive from any thread via submit(); a single executor thread
// drains the queue. A batch closes when it reaches max_batch_size, or when
// max_wait_micros have elapsed since its oldest request was enqueued — so an
// isolated request never waits longer than max_wait_micros for company.
//
// Batching is invisible in the results: request i carries its own RNG stream
// (Rng::from_stream(seed, stream)) and the engine runs per-sample batch-norm
// statistics, so the voltages a request receives are bit-identical whether
// it ran alone or was coalesced into a full batch.
//
// Overload behavior: admission is bounded by max_queue_depth — submit()
// throws Overloaded (a typed, retryable rejection) instead of queueing
// without limit. Each request may carry a relative deadline; requests whose
// deadline passed while queued are failed with DeadlineExceeded rather than
// occupying batch slots. close() starts a graceful drain: new submissions
// are rejected as Overloaded while already-admitted work still completes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "tensor/shape.h"

namespace flashgen::serve {

/// Typed admission rejection: the queue is full or the batcher is draining.
/// The request was NOT executed; the caller may retry later.
class Overloaded : public flashgen::Error {
 public:
  explicit Overloaded(const std::string& what) : flashgen::Error(what) {}
};

/// The request's deadline expired before it reached the engine.
class DeadlineExceeded : public flashgen::Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : flashgen::Error(what) {}
};

/// Future-like handle returned by the convenience submit() wrappers.
///
/// Failures travel through the underlying promise as plain values (an error
/// kind plus a deep-copied message) and are rethrown as freshly-constructed
/// typed exceptions on the calling thread. Shipping a std::exception_ptr
/// through the shared state would hand the caller the *same* exception
/// object the executor/supervisor thread later releases — libstdc++'s
/// rethrow_exception shares one refcounted object, and that refcount lives
/// in the uninstrumented runtime, so ThreadSanitizer reports every what()
/// read as racing the fleet-side release.
class ResponseFuture {
 public:
  /// Blocks for the response. On failure rethrows the typed error
  /// (Overloaded, DeadlineExceeded, or Error) with the original message.
  std::vector<float> get();

 private:
  friend class RequestBatcher;
  friend class ReplicaDispatcher;

  enum class FailKind { kNone, kError, kOverloaded, kDeadline };
  struct Outcome {
    std::vector<float> voltages;
    FailKind kind = FailKind::kNone;
    std::string message;
  };

  /// Folds a completion's (voltages, error) pair into a value, classifying
  /// the error on the completing thread so no exception object outlives it.
  static Outcome classify(std::vector<float>&& voltages, std::exception_ptr error);

  explicit ResponseFuture(std::future<Outcome> inner) : inner_(std::move(inner)) {}

  std::future<Outcome> inner_;
};

struct BatchPolicy {
  std::size_t max_batch_size = 8;
  std::uint64_t max_wait_micros = 2000;
  /// Admission bound: pending + in-flight requests beyond this are rejected
  /// with Overloaded. 0 means unbounded.
  std::size_t max_queue_depth = 128;
};

class RequestBatcher {
 public:
  /// `row_shape` is the shape of one sample without the batch dimension,
  /// e.g. (1, S, S) for an S x S PL array. `metrics` may be null.
  RequestBatcher(InferenceEngine& engine, tensor::Shape row_shape, BatchPolicy policy,
                 ServeMetrics* metrics = nullptr);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Completion callback for submit_async: exactly one of `voltages` (moved
  /// in) or `error` is set. Invoked on the executor thread — keep it cheap
  /// and non-blocking (the epoll front-end encodes the response frame and
  /// hands it to the event loop).
  using Completion = std::function<void(std::vector<float>&& voltages, std::exception_ptr error)>;

  /// Enqueues one sample (row_shape.numel() floats of normalized program
  /// levels). The future yields the generated voltages, or rethrows the
  /// engine's error. `deadline_micros` is a relative completion budget from
  /// now; 0 disables it. Throws Overloaded when the admission queue is full
  /// or the batcher is closed/draining.
  ResponseFuture submit(std::vector<float> program_levels, std::uint64_t seed,
                        std::uint64_t stream, std::uint64_t deadline_micros = 0);

  /// Conditioned submit: the sample is generated at `condition` (raw
  /// physical (PE, retention) units). Requires a condition-aware engine
  /// model; throws flashgen::Error synchronously otherwise. A batch may mix
  /// conditioned and unconditioned requests — unconditioned rows run at the
  /// model's default condition, bit-identical to the unconditioned path.
  ResponseFuture submit(std::vector<float> program_levels, std::uint64_t seed,
                        std::uint64_t stream, std::uint64_t deadline_micros,
                        const data::Condition& condition);

  /// Callback flavor of submit() for event-loop callers that must not block
  /// on a future. Admission errors (Overloaded) still throw synchronously on
  /// the calling thread; execution errors arrive through the completion.
  void submit_async(std::vector<float> program_levels, std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t deadline_micros, Completion done);
  void submit_async(std::vector<float> program_levels, std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t deadline_micros, std::optional<data::Condition> condition,
                    Completion done);

  /// Queued + in-flight requests right now; the replica dispatcher's
  /// least-loaded signal.
  std::size_t outstanding() const;

  /// Age of the oldest request this batcher owns (queued or in flight), in
  /// microseconds; 0 when idle. The supervisor's wedge-detection signal: a
  /// healthy replica keeps this bounded by queue wait + one batch execution,
  /// so a large value means the executor has stopped making progress.
  std::uint64_t oldest_outstanding_micros() const;

  /// Batches that failed back-to-back without an intervening success. The
  /// supervisor's erroring-replica signal; reset to 0 by any successful
  /// batch.
  std::uint32_t consecutive_errors() const { return consecutive_errors_.load(); }

  /// True once the executor has parked on the serve_replica_wedge fault seam
  /// (test/chaos probe).
  bool wedged() const { return wedged_.load(); }

  const tensor::Shape& row_shape() const { return row_shape_; }
  const BatchPolicy& policy() const { return policy_; }

  /// Stops admitting new requests (submit() throws Overloaded) while
  /// already-queued work continues to execute. Idempotent.
  void close();

  /// True once close() has been called.
  bool closed() const;

  /// Blocks until every request enqueued before the call has been executed.
  void drain();

  /// Supervisor teardown: stops the executor (waking it even when parked on
  /// the wedge seam), joins it, and fails every queued or wedged-in-flight
  /// request with a typed Error carrying `reason`. After this the batcher is
  /// inert; the destructor becomes a no-op. Must not be called from the
  /// executor thread.
  void abort_with(const std::string& reason);

 private:
  struct Pending {
    std::vector<float> program_levels;
    std::uint64_t seed;
    std::uint64_t stream;
    std::optional<data::Condition> condition;  // generation wear state, if any
    Completion done;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // time_point::max() if none
  };

  void run();
  void execute_batch(std::vector<Pending> batch);

  InferenceEngine& engine_;
  tensor::Shape row_shape_;
  BatchPolicy policy_;
  ServeMetrics* metrics_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;        // wakes the executor
  std::condition_variable drained_;   // wakes drain() waiters
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;  // rows handed to the engine, not yet fulfilled
  /// Enqueue time of the oldest in-flight request; max() when nothing is in
  /// flight. Feeds oldest_outstanding_micros() while the executor is out of
  /// the lock (possibly wedged) executing a batch.
  std::chrono::steady_clock::time_point in_flight_oldest_ =
      std::chrono::steady_clock::time_point::max();
  /// Batch held by an executor parked on the wedge seam; abort_with() fails
  /// these after joining the executor.
  std::vector<Pending> wedged_batch_;
  bool stop_ = false;    // executor shutdown (destructor / abort_with)
  bool closed_ = false;  // admission closed (graceful drain)
  bool joined_ = false;  // executor already joined by abort_with
  std::atomic<std::uint32_t> consecutive_errors_{0};
  std::atomic<bool> wedged_{false};
  std::thread executor_;
};

}  // namespace flashgen::serve
