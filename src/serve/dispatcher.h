// ReplicaDispatcher: least-loaded request routing over N replica engines,
// with an optional ReplicaSupervisor that keeps the fleet self-healing.
//
// Each replica (an InferenceEngine over its own copy of the model weights)
// gets its own RequestBatcher and executor thread; the dispatcher routes each
// request to the healthy replica with the fewest outstanding requests
// (queued + in-flight), breaking ties deterministically toward the lowest
// index. Because every request carries its own RNG stream and the engine
// runs per-sample batch norm, the routing decision is invisible in the
// results: any replica returns the same bits for the same (seed, stream, PL
// array).
//
// Supervision (registry-backed constructor only): a background thread scans
// every check_interval. A replica whose oldest owned request is older than
// wedge_timeout_micros, or that has failed max_consecutive_errors batches
// back-to-back, is QUARANTINED — routing stops, its queued and in-flight
// work is failed with a typed Error (never silently dropped), and its
// executor is joined. On the next scan the supervisor RESTARTS it: the
// registry rebuilds the engine over the same weights and a fresh batcher is
// swapped in. State machine per replica:
//
//   healthy --wedge/error--> quarantined --restart--> healthy
//                                 ^--- restart failure retries next tick
//
// The fault seams `serve_replica_wedge` (executor parks mid-batch) and
// `serve_replica_restart` (restart attempt fails) make every transition
// deterministically testable; with no fault armed the supervisor never
// fires and responses are bit-identical to the unsupervised path.
//
// Admission control and deadline shedding compose per replica: a request is
// rejected as Overloaded only when its chosen (least-loaded healthy) replica
// is at its queue bound — i.e. when every healthy replica is full — so the
// fleet-wide admission capacity is healthy_replicas x max_queue_depth. With
// zero healthy replicas, submits are rejected Overloaded rather than queued
// against a corpse.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/registry.h"
#include "tensor/shape.h"

namespace flashgen::serve {

/// Knobs for the ReplicaSupervisor (registry-backed dispatcher only).
struct SupervisorPolicy {
  /// A replica whose oldest queued/in-flight request is older than this is
  /// declared wedged and quarantined. Must comfortably exceed worst-case
  /// queue wait + batch execution. 0 disables wedge detection.
  std::uint64_t wedge_timeout_micros = 2'000'000;
  /// Supervisor scan period; also bounds how long a quarantined replica
  /// waits for its restart attempt.
  std::uint64_t check_interval_micros = 20'000;
  /// Quarantine a replica after this many back-to-back failed batches
  /// (consecutive_errors resets on any success). 0 disables error-based
  /// quarantine.
  std::uint32_t max_consecutive_errors = 0;
};

class ReplicaDispatcher {
 public:
  /// Unsupervised: one batcher per engine; `engines` must outlive the
  /// dispatcher and each engine must be exclusive to it (one executor thread
  /// apiece). `metrics` may be null. No supervisor thread is started and no
  /// replica is ever quarantined or restarted.
  ReplicaDispatcher(std::vector<InferenceEngine*> engines, tensor::Shape row_shape,
                    BatchPolicy policy, ServeMetrics* metrics = nullptr);

  /// Supervised: builds one batcher per registry replica of `model` and
  /// starts the ReplicaSupervisor. `registry` must outlive the dispatcher;
  /// restarts go through ModelRegistry::rebuild_replica.
  ReplicaDispatcher(ModelRegistry& registry, const std::string& model, BatchPolicy policy,
                    SupervisorPolicy supervisor, ServeMetrics* metrics = nullptr);

  ~ReplicaDispatcher();

  ReplicaDispatcher(const ReplicaDispatcher&) = delete;
  ReplicaDispatcher& operator=(const ReplicaDispatcher&) = delete;

  /// Least-loaded submit; see RequestBatcher::submit_async for semantics.
  /// Throws Overloaded when the least-loaded healthy replica is at its
  /// admission bound (the whole fleet is full), no replica is healthy, or
  /// the dispatcher is closed.
  void submit_async(std::vector<float> program_levels, std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t deadline_micros, RequestBatcher::Completion done);

  /// Conditioned least-loaded submit (see RequestBatcher's conditioned
  /// submit_async): the sample is generated at `condition` when set.
  void submit_async(std::vector<float> program_levels, std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t deadline_micros, std::optional<data::Condition> condition,
                    RequestBatcher::Completion done);

  /// Future flavor for blocking callers (tests).
  ResponseFuture submit(std::vector<float> program_levels, std::uint64_t seed,
                        std::uint64_t stream, std::uint64_t deadline_micros = 0);
  ResponseFuture submit(std::vector<float> program_levels, std::uint64_t seed,
                        std::uint64_t stream, std::uint64_t deadline_micros,
                        const data::Condition& condition);

  /// Stops admitting on every replica (graceful drain); idempotent. The
  /// supervisor keeps quarantining wedged replicas during the drain (so
  /// drain() terminates) but stops restarting them.
  void close();
  /// Blocks until every admitted request on every replica has been answered
  /// (executed, or failed typed by a quarantine).
  void drain();

  std::size_t replicas() const { return slot_count_; }
  /// Fleet-wide queued + in-flight requests (a load probe, racy by nature).
  std::size_t outstanding() const;
  /// Replicas currently routable (not quarantined, batcher present).
  std::size_t healthy_replicas() const;
  /// Replicas currently quarantined awaiting restart.
  std::size_t quarantined_replicas() const;
  /// Lifetime quarantine / successful-restart transition counts.
  std::uint64_t quarantines() const { return quarantines_.load(); }
  std::uint64_t restarts() const { return restarts_.load(); }
  /// Index the next submit_async would route to, or replicas() when no
  /// replica is healthy. Test probe for deterministic tie-breaking.
  std::size_t least_loaded_replica() const;

  const tensor::Shape& row_shape() const { return row_shape_; }
  /// Per-replica executed-batch counters, for balance checks in tests. Only
  /// meaningful on the unsupervised dispatcher (a supervised replica's
  /// batcher can be torn down concurrently).
  const RequestBatcher& batcher(std::size_t replica) const;

 private:
  struct Slot {
    std::unique_ptr<RequestBatcher> batcher;
    bool quarantined = false;
  };

  void supervise();
  void tick();
  /// Least-loaded healthy pick; returns slots_.size() when none is healthy.
  /// Caller holds mutex_.
  std::size_t pick_replica_locked() const;

  tensor::Shape row_shape_;
  BatchPolicy policy_;
  SupervisorPolicy supervisor_policy_;
  ServeMetrics* metrics_ = nullptr;
  ModelRegistry* registry_ = nullptr;  // null => unsupervised
  std::string model_name_;
  std::size_t slot_count_ = 0;  // slots_ never resizes; lock-free replicas()

  mutable std::mutex mutex_;  // guards slots_ + closed_; ordered BEFORE any batcher mutex
  std::vector<Slot> slots_;
  bool closed_ = false;

  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> restarts_{0};

  std::mutex sup_mutex_;
  std::condition_variable sup_cv_;
  bool sup_stop_ = false;
  std::thread supervisor_;
};

}  // namespace flashgen::serve
