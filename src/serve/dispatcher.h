// ReplicaDispatcher: least-loaded request routing over N replica engines.
//
// Each replica (an InferenceEngine over its own copy of the model weights)
// gets its own RequestBatcher and executor thread; the dispatcher routes each
// request to the replica with the fewest outstanding requests (queued +
// in-flight), breaking ties toward the lowest index. Because every request
// carries its own RNG stream and the engine runs per-sample batch norm, the
// routing decision is invisible in the results: any replica returns the same
// bits for the same (seed, stream, PL array).
//
// Admission control and deadline shedding compose per replica: a request is
// rejected as Overloaded only when its chosen (least-loaded) replica is at
// its queue bound — i.e. when every replica is full — so the fleet-wide
// admission capacity is replicas x max_queue_depth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/metrics.h"
#include "tensor/shape.h"

namespace flashgen::serve {

class ReplicaDispatcher {
 public:
  /// One batcher per engine; `engines` must outlive the dispatcher and each
  /// engine must be exclusive to it (one executor thread apiece). `metrics`
  /// may be null.
  ReplicaDispatcher(std::vector<InferenceEngine*> engines, tensor::Shape row_shape,
                    BatchPolicy policy, ServeMetrics* metrics = nullptr);

  ReplicaDispatcher(const ReplicaDispatcher&) = delete;
  ReplicaDispatcher& operator=(const ReplicaDispatcher&) = delete;

  /// Least-loaded submit; see RequestBatcher::submit_async for semantics.
  /// Throws Overloaded when the least-loaded replica is at its admission
  /// bound (i.e. the whole fleet is full) or the dispatcher is closed.
  void submit_async(std::vector<float> program_levels, std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t deadline_micros, RequestBatcher::Completion done);

  /// Future flavor for blocking callers (tests).
  std::future<std::vector<float>> submit(std::vector<float> program_levels, std::uint64_t seed,
                                         std::uint64_t stream, std::uint64_t deadline_micros = 0);

  /// Stops admitting on every replica (graceful drain); idempotent.
  void close();
  /// Blocks until every admitted request on every replica has executed.
  void drain();

  std::size_t replicas() const { return batchers_.size(); }
  /// Fleet-wide queued + in-flight requests (a load probe, racy by nature).
  std::size_t outstanding() const;
  const tensor::Shape& row_shape() const { return row_shape_; }
  /// Per-replica executed-batch counters, for balance checks in tests.
  const RequestBatcher& batcher(std::size_t replica) const { return *batchers_[replica]; }

 private:
  tensor::Shape row_shape_;
  std::vector<std::unique_ptr<RequestBatcher>> batchers_;
};

}  // namespace flashgen::serve
