#include "serve/batcher.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/stats.h"
#include "common/trace.h"

namespace flashgen::serve {

using tensor::Index;

RequestBatcher::RequestBatcher(InferenceEngine& engine, tensor::Shape row_shape,
                               BatchPolicy policy, ServeMetrics* metrics)
    : engine_(engine), row_shape_(std::move(row_shape)), policy_(policy), metrics_(metrics) {
  FG_CHECK(policy_.max_batch_size > 0, "RequestBatcher: max_batch_size must be positive");
  if (metrics_ != nullptr) metrics_->set_batch_capacity(policy_.max_batch_size);
  executor_ = std::thread([this] { run(); });
}

RequestBatcher::~RequestBatcher() {
  // Requests still queued (or held by a wedged executor) at teardown are
  // abandoned; abort_with fails their completions.
  abort_with("RequestBatcher destroyed with request pending");
}

void RequestBatcher::abort_with(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) return;  // already torn down (abort_with then destructor)
    joined_ = true;
    stop_ = true;
    closed_ = true;
  }
  cv_.notify_all();
  executor_.join();

  std::deque<Pending> queued;
  std::vector<Pending> wedged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queued.swap(queue_);
    wedged.swap(wedged_batch_);
    in_flight_ = 0;
    in_flight_oldest_ = std::chrono::steady_clock::time_point::max();
  }
  const auto error = std::make_exception_ptr(Error(reason));
  for (Pending& p : wedged) p.done({}, error);
  for (Pending& p : queued) p.done({}, error);
  drained_.notify_all();
}

ResponseFuture::Outcome ResponseFuture::classify(std::vector<float>&& voltages,
                                                 std::exception_ptr error) {
  Outcome out;
  if (!error) {
    out.voltages = std::move(voltages);
    return out;
  }
  try {
    std::rethrow_exception(std::move(error));
  } catch (const Overloaded& e) {
    out.kind = FailKind::kOverloaded;
    out.message = e.what();
  } catch (const DeadlineExceeded& e) {
    out.kind = FailKind::kDeadline;
    out.message = e.what();
  } catch (const std::exception& e) {
    out.kind = FailKind::kError;
    out.message = e.what();
  } catch (...) {
    out.kind = FailKind::kError;
    out.message = "unknown serve error";
  }
  return out;
}

std::vector<float> ResponseFuture::get() {
  Outcome out = inner_.get();
  switch (out.kind) {
    case FailKind::kNone:
      return std::move(out.voltages);
    case FailKind::kOverloaded:
      throw Overloaded(out.message);
    case FailKind::kDeadline:
      throw DeadlineExceeded(out.message);
    case FailKind::kError:
      break;
  }
  throw Error(out.message);
}

ResponseFuture RequestBatcher::submit(std::vector<float> program_levels, std::uint64_t seed,
                                      std::uint64_t stream, std::uint64_t deadline_micros) {
  auto promise = std::make_shared<std::promise<ResponseFuture::Outcome>>();
  ResponseFuture future(promise->get_future());
  submit_async(std::move(program_levels), seed, stream, deadline_micros,
               [promise](std::vector<float>&& voltages, std::exception_ptr error) {
                 promise->set_value(ResponseFuture::classify(std::move(voltages), std::move(error)));
               });
  return future;
}

ResponseFuture RequestBatcher::submit(std::vector<float> program_levels, std::uint64_t seed,
                                      std::uint64_t stream, std::uint64_t deadline_micros,
                                      const data::Condition& condition) {
  auto promise = std::make_shared<std::promise<ResponseFuture::Outcome>>();
  ResponseFuture future(promise->get_future());
  submit_async(std::move(program_levels), seed, stream, deadline_micros, condition,
               [promise](std::vector<float>&& voltages, std::exception_ptr error) {
                 promise->set_value(ResponseFuture::classify(std::move(voltages), std::move(error)));
               });
  return future;
}

void RequestBatcher::submit_async(std::vector<float> program_levels, std::uint64_t seed,
                                  std::uint64_t stream, std::uint64_t deadline_micros,
                                  Completion done) {
  submit_async(std::move(program_levels), seed, stream, deadline_micros, std::nullopt,
               std::move(done));
}

void RequestBatcher::submit_async(std::vector<float> program_levels, std::uint64_t seed,
                                  std::uint64_t stream, std::uint64_t deadline_micros,
                                  std::optional<data::Condition> condition, Completion done) {
  FG_CHECK(program_levels.size() == static_cast<std::size_t>(row_shape_.numel()),
           "RequestBatcher: got " << program_levels.size() << " floats for row shape "
                                  << row_shape_);
  FG_CHECK(!condition.has_value() || engine_.model().condition_aware(),
           "RequestBatcher: model " << engine_.model().name()
                                    << " does not accept generation conditions");
  Pending pending;
  pending.program_levels = std::move(program_levels);
  pending.seed = seed;
  pending.stream = stream;
  pending.condition = condition;
  pending.done = std::move(done);
  pending.enqueued = std::chrono::steady_clock::now();
  pending.deadline = deadline_micros > 0
                         ? pending.enqueued + std::chrono::microseconds(deadline_micros)
                         : std::chrono::steady_clock::time_point::max();
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FG_CHECK(!stop_, "RequestBatcher: submit after shutdown");
    if (closed_) {
      if (metrics_ != nullptr) metrics_->record_shed();
      throw Overloaded("server is draining; not accepting new requests");
    }
    if (policy_.max_queue_depth > 0 && queue_.size() + in_flight_ >= policy_.max_queue_depth) {
      if (metrics_ != nullptr) metrics_->record_shed();
      static stats::Counter& shed_total = stats::counter("serve.shed");
      shed_total.add();
      std::ostringstream os;
      os << "admission queue full (" << queue_.size() + in_flight_ << "/"
         << policy_.max_queue_depth << ")";
      throw Overloaded(os.str());
    }
    queue_.push_back(std::move(pending));
    depth = queue_.size() + in_flight_;
  }
  if (metrics_ != nullptr) metrics_->record_enqueue(depth);
  static stats::Gauge& queue_depth = stats::gauge("serve.queue_depth");
  queue_depth.set(static_cast<double>(depth));
  cv_.notify_one();
}

std::size_t RequestBatcher::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + in_flight_;
}

std::uint64_t RequestBatcher::oldest_outstanding_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto oldest = in_flight_oldest_;
  if (!queue_.empty()) oldest = std::min(oldest, queue_.front().enqueued);
  if (oldest == std::chrono::steady_clock::time_point::max()) return 0;
  const auto now = std::chrono::steady_clock::now();
  if (now <= oldest) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - oldest).count());
}

void RequestBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void RequestBatcher::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void RequestBatcher::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;

    // Hold the batch open until it fills or its oldest request has waited
    // max_wait_micros. Under a steady request stream this closes full
    // batches; an isolated request pays at most the wait bound.
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(policy_.max_wait_micros);
    while (queue_.size() < policy_.max_batch_size && !stop_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (stop_) return;

    const std::size_t take = std::min(queue_.size(), policy_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    in_flight_ = batch.size();
    in_flight_oldest_ = batch.front().enqueued;  // FIFO: front is oldest

    lock.unlock();
    if (FG_FAULT("serve_replica_wedge")) {
      // Simulated wedge: the executor stops making progress while its batch
      // stays in flight, exactly like an engine stuck in a kernel. The
      // in-flight accounting is left standing so oldest_outstanding_micros()
      // keeps aging; abort_with() (the supervisor's quarantine path) is the
      // only way out, and it fails this batch after joining us.
      wedged_.store(true);
      lock.lock();
      wedged_batch_ = std::move(batch);
      cv_.wait(lock, [this] { return stop_; });
      return;
    }
    execute_batch(std::move(batch));
    lock.lock();

    in_flight_ = 0;
    in_flight_oldest_ = std::chrono::steady_clock::time_point::max();
    drained_.notify_all();
  }
}

void RequestBatcher::execute_batch(std::vector<Pending> batch) {
  FG_TRACE_SPAN("serve.batch", "serve");
  // Shed requests whose deadline already passed while queued: failing them
  // now is cheaper than spending a batch slot computing an answer nobody is
  // waiting for.
  {
    const auto now = std::chrono::steady_clock::now();
    std::vector<Pending> live;
    live.reserve(batch.size());
    for (Pending& p : batch) {
      if (now > p.deadline) {
        if (metrics_ != nullptr) metrics_->record_deadline_exceeded();
        static stats::Counter& expired_total = stats::counter("serve.deadline_exceeded");
        expired_total.add();
        p.done({}, std::make_exception_ptr(DeadlineExceeded("deadline exceeded while queued")));
      } else {
        live.push_back(std::move(p));
      }
    }
    batch = std::move(live);
    if (batch.empty()) return;
  }
  trace::counter("serve.batch_size", static_cast<double>(batch.size()));
  if (metrics_ != nullptr) {
    const auto now = std::chrono::steady_clock::now();
    for (const Pending& p : batch) {
      metrics_->record_stage(
          "queue_wait", static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::microseconds>(
                                now - p.enqueued)
                                .count()));
    }
  }
  const auto n = static_cast<Index>(batch.size());
  const auto row_elems = static_cast<std::size_t>(row_shape_.numel());

  std::vector<Index> dims;
  dims.push_back(n);
  for (auto d : row_shape_.dims()) dims.push_back(d);

  try {
    if (FG_FAULT("serve_replica_error")) {
      throw Error("injected replica execution fault (serve_replica_error)");
    }
    Tensor pl = Tensor::zeros(tensor::Shape(dims));
    auto pl_data = pl.data();
    std::vector<flashgen::Rng> rngs;
    rngs.reserve(batch.size());
    bool conditioned = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::copy(batch[i].program_levels.begin(), batch[i].program_levels.end(),
                pl_data.begin() + static_cast<std::ptrdiff_t>(i * row_elems));
      rngs.push_back(flashgen::Rng::from_stream(batch[i].seed, batch[i].stream));
      conditioned = conditioned || batch[i].condition.has_value();
    }

    std::vector<float> out(batch.size() * row_elems);
    if (conditioned) {
      // Mixed batches run every row through the conditioned path;
      // unconditioned neighbors get the model's default condition, which is
      // exactly what sample_rows() would have used — bit-identical either way.
      std::vector<data::Condition> conditions;
      conditions.reserve(batch.size());
      const data::Condition fallback = engine_.model().default_condition();
      for (const Pending& p : batch) conditions.push_back(p.condition.value_or(fallback));
      engine_.generate_into_at(pl, conditions, rngs, out);
    } else {
      engine_.generate_into(pl, rngs, out);
    }
    consecutive_errors_.store(0);
    if (metrics_ != nullptr) metrics_->record_batch(batch.size());

    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].done(std::vector<float>(
                        out.begin() + static_cast<std::ptrdiff_t>(i * row_elems),
                        out.begin() + static_cast<std::ptrdiff_t>((i + 1) * row_elems)),
                    nullptr);
    }
  } catch (...) {
    consecutive_errors_.fetch_add(1);
    if (metrics_ != nullptr) metrics_->record_error();
    for (Pending& p : batch) p.done({}, std::current_exception());
  }
}

}  // namespace flashgen::serve
