// Serving metrics: latency histograms plus queue/throughput counters.
//
// One ServeMetrics instance is shared by the batcher (queue depth, batch
// sizes, per-stage timings) and the server front-end (request latency). All
// methods are thread-safe; reads produce a consistent snapshot under the same
// mutex the writers take, so `to_json()` can be called while traffic is in
// flight — including before the first request, where every emitted number is
// still finite (no NaN/Inf from empty windows).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace flashgen::serve {

/// Log-spaced latency histogram over [1us, ~17s). Bucket b covers
/// [2^b, 2^(b+1)) microseconds; the last bucket absorbs everything above.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 25;

  void record(std::uint64_t micros);
  /// Inverse-CDF lookup: midpoint of the bucket holding quantile q in
  /// [0, 1], so a constant stream reports its own value (to bucket
  /// resolution) instead of up to 2x high at the bucket's upper edge.
  /// Returns 0 when empty.
  std::uint64_t quantile_micros(double q) const;
  /// Arithmetic mean in microseconds; 0 when empty.
  double mean_micros() const;
  std::uint64_t count() const { return count_; }
  std::uint64_t total_micros() const { return total_micros_; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_micros_ = 0;
};

class ServeMetrics {
 public:
  void record_request(std::uint64_t latency_micros);
  void record_batch(std::size_t batch_size);
  void record_enqueue(std::size_t queue_depth_after);
  void record_error();
  /// Request rejected at admission (queue full or draining) with kOverloaded.
  void record_shed();
  /// Request failed because its deadline expired before execution.
  void record_deadline_exceeded();
  /// accept() failed with a transient errno (ECONNABORTED, EMFILE, ...); the
  /// listener kept running. Reported as "accept_errors".
  void record_accept_error();
  /// Request rejected by per-tenant token-bucket admission with kRateLimited.
  void record_rate_limited();
  /// Connection force-closed by hygiene (idle timeout, pipeline cap, or
  /// buffered-bytes cap). Reported as "conn_evicted".
  void record_conn_evicted();
  /// Supervisor quarantined a wedged/erroring replica.
  void record_replica_quarantine();
  /// Supervisor restarted a quarantined replica (fresh engine + batcher).
  void record_replica_restart();
  /// Latency sample for one named pipeline stage (e.g. "decode",
  /// "queue_wait", "infer", "write"). Stages appear in the JSON under
  /// "stages" keyed by name; names should be string literals from a small
  /// fixed set (each distinct name owns a histogram for the process life).
  void record_stage(const std::string& stage, std::uint64_t micros);
  /// Batch-size ceiling used as the occupancy denominator (the batcher's
  /// max_batch_size). 0 (the default) reports occupancy 0.
  void set_batch_capacity(std::size_t max_batch);

  /// JSON object with request/batch counters, latency quantiles and
  /// per-stage summaries, batch occupancy, peak queue depth, and a
  /// "process" sub-object embedding the global stats registry
  /// (stats::to_json). Every number is finite for every window size,
  /// including an empty one. `elapsed_seconds` > 0 adds requests-per-second.
  std::string to_json(double elapsed_seconds = 0.0) const;

 private:
  mutable std::mutex mutex_;
  LatencyHistogram latency_;
  std::map<std::string, LatencyHistogram> stages_;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t accept_errors_ = 0;
  std::uint64_t rate_limited_ = 0;
  std::uint64_t conn_evicted_ = 0;
  std::uint64_t replica_quarantines_ = 0;
  std::uint64_t replica_restarts_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_rows_ = 0;
  std::size_t max_batch_ = 0;
  std::size_t batch_capacity_ = 0;
  std::size_t queue_depth_peak_ = 0;
};

}  // namespace flashgen::serve
