// Open-loop load generation for flashgen_serve.
//
// The closed-loop mode (flashgen_loadgen's default) sends the next request
// only after the previous response arrives, so a slow server throttles its
// own load and the measured latency hides queueing — the classic coordinated
// omission trap. The open-loop engine here instead injects requests on a
// fixed wall-clock schedule (target_rps), spread round-robin over N
// connections with pipelining, regardless of how fast responses return.
// Latency is measured from each request's *scheduled* injection time to its
// response, so server-side queue buildup shows up in the tail instead of
// silently stretching the run.
//
// One epoll thread multiplexes every connection (the same non-blocking
// framing machinery the server uses), which keeps 1k+ concurrent
// connections cheap on the client side. Request content is a pure function
// of (seed, request index), and the response checksum XORs order-independent
// per-response hashes, so two runs at the same seeds — over any transport,
// replica count, or completion order — must report the same checksum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flashgen::serve {

struct OpenLoopOptions {
  std::string endpoint;             // endpoint spec, see endpoint.h
  std::string model = "Gaussian";
  std::uint32_t side = 16;          // PL array is side x side
  std::uint64_t seed = 1;           // request i uses stream i
  std::uint64_t deadline_micros = 0;
  /// Tenant id stamped on every request (protocol v2). Open-loop mode NEVER
  /// retries typed sheds: a retry would re-couple injection to server state,
  /// reintroducing the coordinated omission the open loop exists to avoid.
  /// Sheds are counted (shed / rate_limited) and the schedule marches on.
  std::uint32_t tenant_id = 0;
  int connections = 64;
  double target_rps = 1000.0;       // injection rate across all connections
  int total_requests = 4096;        // run length
  /// Mixed workload: every Nth scheduled request (indices 0, N, 2N, ...) is
  /// a kThresholdQuery at (threshold_pe, threshold_retention) instead of a
  /// generate — the controller-like pattern of bulk reads with occasional
  /// wear-state recalibration. 0 (default) = pure generate. The server
  /// answers the first query cold (sampling waves through the fleet) and
  /// subsequent ones from its threshold cache; both land in threshold_ok.
  int threshold_every = 0;
  double threshold_pe = 4000.0;
  double threshold_retention = 0.0;
};

struct OpenLoopResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;            // kGenerateOk responses
  std::uint64_t threshold_ok = 0;  // kThresholdOk responses (mixed workload)
  std::uint64_t shed = 0;          // kOverloaded responses
  std::uint64_t rate_limited = 0;  // kRateLimited responses (typed, counted, never retried)
  std::uint64_t errors = 0;        // kError responses
  double elapsed_sec = 0.0;
  double achieved_rps = 0.0;  // completions / elapsed
  // Exact client-side quantiles (sorted sample, not histogram buckets),
  // measured from scheduled injection to response, successes only.
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_us = 0;
  // XOR of per-response FNV-1a hashes: order-independent, so equal seeds must
  // give equal checksums across transports, replica counts, and schedules.
  // kThresholdOk payloads are hashed with the from_cache byte zeroed — the
  // report bits are cache-invariant by construction, the flag is not.
  std::uint64_t checksum = 0;
};

/// Runs one open-loop measurement against a serving endpoint. Blocks until
/// every injected request has been answered. Throws flashgen::Error if a
/// connection fails mid-run (the measurement would be meaningless).
OpenLoopResult run_open_loop(const OpenLoopOptions& options);

/// Nearest-rank quantile over an unsorted latency sample (sorts in place).
std::uint64_t exact_quantile_us(std::vector<std::uint64_t>& sample, double q);

}  // namespace flashgen::serve
