#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stats.h"

namespace flashgen::serve {

namespace {
int bucket_for(std::uint64_t micros) {
  int b = 0;
  while (b + 1 < LatencyHistogram::kBuckets && (std::uint64_t{1} << (b + 1)) <= micros) ++b;
  return b;
}

// All derived metrics funnel through these two guards so an empty or
// single-sample window can never leak NaN/Inf into the JSON (which most
// parsers reject outright).
double safe_ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }
}  // namespace

void LatencyHistogram::record(std::uint64_t micros) {
  ++buckets_[static_cast<std::size_t>(bucket_for(micros))];
  ++count_;
  total_micros_ += micros;
}

std::uint64_t LatencyHistogram::quantile_micros(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based, so q=1 is the max sample's bucket.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      // Midpoint of [2^b, 2^(b+1)): the unbiased point estimate for the
      // bucket. The upper edge overstated every quantile by up to 2x — a
      // constant 1us stream reported p50 = 2us.
      const std::uint64_t lo = std::uint64_t{1} << b;
      return lo + lo / 2;
    }
  }
  return std::uint64_t{1} << kBuckets;
}

double LatencyHistogram::mean_micros() const {
  return safe_ratio(static_cast<double>(total_micros_), static_cast<double>(count_));
}

void ServeMetrics::record_request(std::uint64_t latency_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  latency_.record(latency_micros);
}

void ServeMetrics::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batched_rows_ += batch_size;
  max_batch_ = std::max(max_batch_, batch_size);
}

void ServeMetrics::record_enqueue(std::size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_depth_peak_ = std::max(queue_depth_peak_, queue_depth_after);
}

void ServeMetrics::record_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++errors_;
}

void ServeMetrics::record_shed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++shed_;
}

void ServeMetrics::record_deadline_exceeded() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++deadline_exceeded_;
}

void ServeMetrics::record_accept_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++accept_errors_;
}

void ServeMetrics::record_rate_limited() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rate_limited_;
}

void ServeMetrics::record_conn_evicted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++conn_evicted_;
}

void ServeMetrics::record_replica_quarantine() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++replica_quarantines_;
}

void ServeMetrics::record_replica_restart() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++replica_restarts_;
}

void ServeMetrics::record_stage(const std::string& stage, std::uint64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_[stage].record(micros);
}

void ServeMetrics::set_batch_capacity(std::size_t max_batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  batch_capacity_ = max_batch;
}

std::string ServeMetrics::to_json(double elapsed_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{";
  out << "\"requests\": " << requests_;
  out << ", \"errors\": " << errors_;
  out << ", \"shed\": " << shed_;
  out << ", \"deadline_exceeded\": " << deadline_exceeded_;
  out << ", \"accept_errors\": " << accept_errors_;
  out << ", \"rate_limited\": " << rate_limited_;
  out << ", \"conn_evicted\": " << conn_evicted_;
  out << ", \"replica_quarantines\": " << replica_quarantines_;
  out << ", \"replica_restarts\": " << replica_restarts_;
  out << ", \"batches\": " << batches_;
  out << ", \"batched_rows\": " << batched_rows_;
  out << ", \"max_batch_size\": " << max_batch_;
  out << ", \"batch_capacity\": " << batch_capacity_;
  const double mean_batch =
      safe_ratio(static_cast<double>(batched_rows_), static_cast<double>(batches_));
  out << ", \"batch_mean_size\": " << finite_or_zero(mean_batch);
  // Occupancy in [0, 1]: how full the average executed batch was.
  out << ", \"batch_occupancy\": "
      << finite_or_zero(safe_ratio(mean_batch, static_cast<double>(batch_capacity_)));
  out << ", \"queue_depth_peak\": " << queue_depth_peak_;
  out << ", \"latency_mean_us\": " << finite_or_zero(latency_.mean_micros());
  out << ", \"latency_p50_us\": " << latency_.quantile_micros(0.50);
  out << ", \"latency_p90_us\": " << latency_.quantile_micros(0.90);
  out << ", \"latency_p99_us\": " << latency_.quantile_micros(0.99);
  out << ", \"latency_p999_us\": " << latency_.quantile_micros(0.999);
  if (std::isfinite(elapsed_seconds) && elapsed_seconds > 0.0) {
    out << ", \"requests_per_sec\": "
        << finite_or_zero(static_cast<double>(requests_) / elapsed_seconds);
  }
  out << ", \"stages\": {";
  bool first = true;
  for (const auto& [name, hist] : stages_) {
    out << (first ? "" : ", ") << "\"" << name << "\": {";
    out << "\"count\": " << hist.count();
    out << ", \"mean_us\": " << finite_or_zero(hist.mean_micros());
    out << ", \"p50_us\": " << hist.quantile_micros(0.50);
    out << ", \"p99_us\": " << hist.quantile_micros(0.99);
    out << ", \"p999_us\": " << hist.quantile_micros(0.999);
    out << "}";
    first = false;
  }
  out << "}";
  out << ", \"process\": " << stats::to_json();
  out << "}";
  return out.str();
}

}  // namespace flashgen::serve
