#include "serve/metrics.h"

#include <algorithm>
#include <sstream>

namespace flashgen::serve {

namespace {
int bucket_for(std::uint64_t micros) {
  int b = 0;
  while (b + 1 < LatencyHistogram::kBuckets && (std::uint64_t{1} << (b + 1)) <= micros) ++b;
  return b;
}
}  // namespace

void LatencyHistogram::record(std::uint64_t micros) {
  ++buckets_[static_cast<std::size_t>(bucket_for(micros))];
  ++count_;
  total_micros_ += micros;
}

std::uint64_t LatencyHistogram::quantile_micros(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based, so q=1 is the max sample's bucket.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= rank) return std::uint64_t{1} << (b + 1);
  }
  return std::uint64_t{1} << kBuckets;
}

void ServeMetrics::record_request(std::uint64_t latency_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  latency_.record(latency_micros);
}

void ServeMetrics::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batched_rows_ += batch_size;
  max_batch_ = std::max(max_batch_, batch_size);
}

void ServeMetrics::record_enqueue(std::size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_depth_peak_ = std::max(queue_depth_peak_, queue_depth_after);
}

void ServeMetrics::record_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++errors_;
}

std::string ServeMetrics::to_json(double elapsed_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{";
  out << "\"requests\": " << requests_;
  out << ", \"errors\": " << errors_;
  out << ", \"batches\": " << batches_;
  out << ", \"batched_rows\": " << batched_rows_;
  out << ", \"max_batch_size\": " << max_batch_;
  out << ", \"queue_depth_peak\": " << queue_depth_peak_;
  const double mean_us =
      latency_.count() == 0
          ? 0.0
          : static_cast<double>(latency_.total_micros()) / static_cast<double>(latency_.count());
  out << ", \"latency_mean_us\": " << mean_us;
  out << ", \"latency_p50_us\": " << latency_.quantile_micros(0.50);
  out << ", \"latency_p90_us\": " << latency_.quantile_micros(0.90);
  out << ", \"latency_p99_us\": " << latency_.quantile_micros(0.99);
  if (elapsed_seconds > 0.0) {
    out << ", \"requests_per_sec\": " << static_cast<double>(requests_) / elapsed_seconds;
  }
  out << "}";
  return out.str();
}

}  // namespace flashgen::serve
