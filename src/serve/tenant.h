// TenantGovernor: per-tenant token-bucket admission for the serve front end.
//
// Every generate request carries a u32 tenant id (protocol v2; v1 frames map
// to tenant 0). Each tenant owns a token bucket refilled at rate_per_sec up
// to burst tokens; admitting a request costs one token. A tenant storming
// past its rate only drains its own bucket — the fleet's admission queues
// stay available to everyone else — and is shed with a typed kRateLimited
// carrying the earliest time a retry can be admitted.
//
// The default policy (rate 0) is UNLIMITED and a strict no-op: admit()
// returns immediately without touching any lock or map, so a server
// configured without --tenant-rate pays nothing and responses stay
// bit-identical to the pre-admission code path.
//
// The governor is called from the single epoll loop thread, but is guarded
// by a mutex anyway so tests and future multi-loop servers can share one
// instance; the critical section is a map lookup plus a few flops.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace flashgen::serve {

struct TenantPolicy {
  /// Sustained admission rate per tenant, requests/second. 0 (default)
  /// disables per-tenant admission entirely.
  double rate_per_sec = 0.0;
  /// Bucket capacity: how many requests a tenant can burst above the
  /// sustained rate. <= 0 defaults to max(rate_per_sec, 1) — one second of
  /// rate, never less than a single request.
  double burst = 0.0;
};

class TenantGovernor {
 public:
  struct Decision {
    bool admitted = true;
    /// When rejected: micros until the bucket next holds a full token.
    std::uint64_t retry_after_micros = 0;
  };

  explicit TenantGovernor(TenantPolicy policy);

  /// True when the policy actually limits (rate > 0).
  bool enabled() const { return policy_.rate_per_sec > 0.0; }
  const TenantPolicy& policy() const { return policy_; }

  /// Charges one token to `tenant_id`'s bucket at the current time.
  Decision admit(std::uint32_t tenant_id) {
    return admit(tenant_id, std::chrono::steady_clock::now());
  }
  /// Injectable-clock flavor for deterministic unit tests.
  Decision admit(std::uint32_t tenant_id, std::chrono::steady_clock::time_point now);

  /// Tenants currently tracked (test probe).
  std::size_t tracked_tenants() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last{};
  };

  TenantPolicy policy_;
  double burst_ = 0.0;  // resolved capacity (policy_.burst with the default applied)
  mutable std::mutex mutex_;
  std::unordered_map<std::uint32_t, Bucket> buckets_;
};

}  // namespace flashgen::serve
