// Serve transport endpoints: one spec string covers both supported
// transports, so every binary (server, loadgen, tests) takes the same flag.
//
//   "unix:/tmp/flashgen.sock"  - AF_UNIX stream socket at that path
//   "/tmp/flashgen.sock"       - bare paths mean unix too (back-compat)
//   "tcp:127.0.0.1:7070"       - TCP over the given host:port
//   "tcp::7070"                - TCP on all interfaces
//   "tcp:127.0.0.1:0"          - TCP on an OS-assigned port (tests; read it
//                                back with bound_port())
//
// listen_endpoint/connect_endpoint own the transport-specific setup:
// SO_REUSEADDR + TCP_NODELAY for TCP (small request/response frames would
// otherwise stall on Nagle/delayed-ACK interaction), stale-socket unlink for
// unix.
#pragma once

#include <cstdint>
#include <string>

namespace flashgen::serve {

struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;  // unix socket path (kUnix)
  std::string host;  // empty = all interfaces (kTcp)
  std::uint16_t port = 0;  // 0 = OS-assigned (kTcp)
};

/// Parses an endpoint spec (see header comment). Throws flashgen::Error on a
/// malformed spec.
Endpoint parse_endpoint(const std::string& spec);

/// Canonical spec string; parse_endpoint(to_string(e)) round-trips.
std::string to_string(const Endpoint& endpoint);

/// Creates, binds, and listens a socket for `endpoint` with the given
/// backlog (pass SOMAXCONN unless you are testing backlog behavior). For
/// unix endpoints any stale socket file is unlinked first. Returns the
/// listening fd (blocking; callers running an event loop mark it
/// non-blocking). Throws flashgen::Error on failure.
int listen_endpoint(const Endpoint& endpoint, int backlog);

/// Connects a blocking client socket to `endpoint` (TCP_NODELAY set for
/// TCP). Throws flashgen::Error on failure.
int connect_endpoint(const Endpoint& endpoint);

/// The port a bound TCP socket actually landed on (resolves port 0).
std::uint16_t bound_port(int fd);

}  // namespace flashgen::serve
