// flashgen_loadgen: load generator for flashgen_serve.
//
// Two modes:
//   closed loop (default) — `connections` threads, each with one blocking
//     client sending `requests` generate calls back-to-back. Simple, but a
//     slow server throttles its own load and queueing hides in the walltime.
//   open loop (--open)    — requests are injected on a fixed schedule
//     (--rps), spread round-robin over `connections` pipelined non-blocking
//     connections driven by one epoll thread; `requests` is then the total.
//     Latency is measured from each request's scheduled injection time, so
//     queue buildup shows up in p99/p999 instead of being coordinated away.
//
// Run:  ./flashgen_loadgen [flags] [endpoint] [model] [requests] [connections] [side] [seed] [deadline_us]
//   endpoint     default /tmp/flashgen_serve.sock; accepts "unix:/path",
//                a bare path, or "tcp:host:port"
//   model        default Gaussian (must match a name the server registered)
//   requests     default 256 per connection (closed) / 4096 total (open)
//   connections  default 4 (closed) / 64 (open)
//   side         default 16 (must match the served model's array size)
//   seed         default 1
//   deadline_us  default 0 (no per-request deadline)
// Flags:
//   --open             open-loop mode (see above)
//   --rps=N            open-loop injection rate across all connections,
//                      default 1000
//   --tenant=N         tenant id stamped on every request (protocol v2),
//                      default 0
//   --retries=N        closed loop only: total attempts per request with
//                      capped exponential backoff + jitter on kOverloaded /
//                      kRateLimited (default 1 = no retry). Deliberately
//                      unavailable in open-loop mode: retrying would
//                      re-couple injection to server state and reintroduce
//                      coordinated omission.
//   --retry-base-us=N  first backoff ceiling, default 1000
//   --retry-max-us=N   backoff cap, default 250000
//   --threshold-every=N  open loop only: mixed workload — every Nth scheduled
//                      request becomes a kThresholdQuery (wear-aware read
//                      thresholds) instead of a generate; counted separately
//                      as threshold_ok and kept out of the generate latency
//                      quantiles (default 0 = pure generate). Needs a
//                      condition-aware model (Temporal)
//   --threshold-pe=X   queried PE cycles, default 4000
//   --threshold-retention=X  queried retention hours, default 0
//
// Requests the server rejects with kOverloaded / kRateLimited are counted as
// "shed" / "rate_limited" rather than aborting the run, so the tool can probe
// overload and admission behavior directly.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/normalization.h"
#include "serve/loadgen.h"
#include "serve/metrics.h"
#include "serve/server.h"

using namespace flashgen;

int main(int argc, char** argv) {
  bool open_loop = false;
  double rps = 1000.0;
  std::uint32_t tenant = 0;
  int retries = 1;
  std::uint64_t retry_base_us = 1000;
  std::uint64_t retry_max_us = 250000;
  int threshold_every = 0;
  double threshold_pe = 4000.0;
  double threshold_retention = 0.0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--open") {
      open_loop = true;
    } else if (arg.rfind("--rps=", 0) == 0) {
      rps = std::atof(arg.c_str() + std::strlen("--rps="));
    } else if (arg.rfind("--tenant=", 0) == 0) {
      tenant = static_cast<std::uint32_t>(std::atoll(arg.c_str() + std::strlen("--tenant=")));
    } else if (arg.rfind("--retries=", 0) == 0) {
      retries = std::atoi(arg.c_str() + std::strlen("--retries="));
    } else if (arg.rfind("--retry-base-us=", 0) == 0) {
      retry_base_us =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + std::strlen("--retry-base-us=")));
    } else if (arg.rfind("--retry-max-us=", 0) == 0) {
      retry_max_us =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + std::strlen("--retry-max-us=")));
    } else if (arg.rfind("--threshold-every=", 0) == 0) {
      threshold_every = std::atoi(arg.c_str() + std::strlen("--threshold-every="));
    } else if (arg.rfind("--threshold-pe=", 0) == 0) {
      threshold_pe = std::atof(arg.c_str() + std::strlen("--threshold-pe="));
    } else if (arg.rfind("--threshold-retention=", 0) == 0) {
      threshold_retention = std::atof(arg.c_str() + std::strlen("--threshold-retention="));
    } else {
      positional.push_back(arg);
    }
  }
  const std::string endpoint = positional.size() > 0 ? positional[0] : "/tmp/flashgen_serve.sock";
  const std::string model = positional.size() > 1 ? positional[1] : "Gaussian";
  const int requests =
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : (open_loop ? 4096 : 256);
  const int connections =
      positional.size() > 3 ? std::atoi(positional[3].c_str()) : (open_loop ? 64 : 4);
  const auto side =
      static_cast<std::uint32_t>(positional.size() > 4 ? std::atoi(positional[4].c_str()) : 16);
  const auto seed =
      static_cast<std::uint64_t>(positional.size() > 5 ? std::atoll(positional[5].c_str()) : 1);
  const auto deadline_us =
      static_cast<std::uint64_t>(positional.size() > 6 ? std::atoll(positional[6].c_str()) : 0);

  if (open_loop) {
    serve::OpenLoopOptions options;
    options.endpoint = endpoint;
    options.model = model;
    options.side = side;
    options.seed = seed;
    options.deadline_micros = deadline_us;
    options.tenant_id = tenant;
    options.connections = connections;
    options.target_rps = rps;
    options.total_requests = requests;
    options.threshold_every = threshold_every;
    options.threshold_pe = threshold_pe;
    options.threshold_retention = threshold_retention;
    const serve::OpenLoopResult result = serve::run_open_loop(options);

    serve::Client stats_client(endpoint);
    const std::string server_stats = stats_client.stats();
    std::printf("{\"mode\": \"open\", \"model\": \"%s\", \"requests\": %llu, \"connections\": %d,\n",
                model.c_str(), static_cast<unsigned long long>(result.sent), connections);
    std::printf(" \"target_rps\": %.1f, \"achieved_rps\": %.1f, \"elapsed_sec\": %.3f,\n", rps,
                result.achieved_rps, result.elapsed_sec);
    std::printf(
        " \"ok\": %llu, \"threshold_ok\": %llu, \"shed\": %llu, \"rate_limited\": %llu, "
        "\"errors\": %llu, \"checksum\": %llu,\n",
        static_cast<unsigned long long>(result.ok),
        static_cast<unsigned long long>(result.threshold_ok),
        static_cast<unsigned long long>(result.shed),
        static_cast<unsigned long long>(result.rate_limited),
        static_cast<unsigned long long>(result.errors),
        static_cast<unsigned long long>(result.checksum));
    std::printf(
        " \"client_p50_us\": %llu, \"client_p90_us\": %llu, \"client_p99_us\": %llu, "
        "\"client_p999_us\": %llu, \"client_max_us\": %llu,\n",
        static_cast<unsigned long long>(result.p50_us),
        static_cast<unsigned long long>(result.p90_us),
        static_cast<unsigned long long>(result.p99_us),
        static_cast<unsigned long long>(result.p999_us),
        static_cast<unsigned long long>(result.max_us));
    std::printf(" \"server\": %s}\n", server_stats.c_str());
    return 0;
  }

  data::VoltageNormalizer normalizer;
  serve::LatencyHistogram latency;
  std::mutex latency_mutex;
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> rate_limited{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client(endpoint);
      Rng rng(seed + static_cast<std::uint64_t>(c) + 1);
      serve::RetryPolicy retry;
      retry.max_attempts = retries;
      retry.base_backoff_micros = retry_base_us;
      retry.max_backoff_micros = retry_max_us;
      retry.seed = seed + static_cast<std::uint64_t>(c) + 1;  // desynchronize threads
      serve::GenerateRequest request;
      request.model = model;
      request.tenant_id = tenant;
      request.seed = seed;
      request.side = side;
      request.deadline_micros = deadline_us;
      request.program_levels.resize(static_cast<std::size_t>(side) * side);
      for (int i = 0; i < requests; ++i) {
        for (float& v : request.program_levels)
          v = normalizer.normalize_level(static_cast<int>(rng.uniform_int(8)));
        request.stream = static_cast<std::uint64_t>(c) * static_cast<std::uint64_t>(requests) +
                         static_cast<std::uint64_t>(i);
        const auto r0 = std::chrono::steady_clock::now();
        try {
          (void)client.generate_with_retry(request, retry);
        } catch (const serve::RateLimited&) {
          rate_limited.fetch_add(1);
          continue;
        } catch (const serve::Overloaded&) {
          shed.fetch_add(1);
          continue;
        }
        const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - r0);
        std::lock_guard<std::mutex> lock(latency_mutex);
        latency.record(static_cast<std::uint64_t>(micros.count()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  serve::Client stats_client(endpoint);
  const std::string server_stats = stats_client.stats();

  const auto total = static_cast<double>(requests) * connections;
  std::printf("{\"mode\": \"closed\", \"model\": \"%s\", \"requests\": %d, \"connections\": %d, \"side\": %u,\n",
              model.c_str(), requests * connections, connections, side);
  std::printf(" \"shed\": %llu, \"rate_limited\": %llu,\n",
              static_cast<unsigned long long>(shed.load()),
              static_cast<unsigned long long>(rate_limited.load()));
  std::printf(" \"elapsed_sec\": %.3f, \"requests_per_sec\": %.1f,\n", elapsed, total / elapsed);
  std::printf(" \"client_p50_us\": %llu, \"client_p90_us\": %llu, \"client_p99_us\": %llu, \"client_p999_us\": %llu,\n",
              static_cast<unsigned long long>(latency.quantile_micros(0.50)),
              static_cast<unsigned long long>(latency.quantile_micros(0.90)),
              static_cast<unsigned long long>(latency.quantile_micros(0.99)),
              static_cast<unsigned long long>(latency.quantile_micros(0.999)));
  std::printf(" \"server\": %s}\n", server_stats.c_str());
  return 0;
}
