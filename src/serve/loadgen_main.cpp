// flashgen_loadgen: load generator for flashgen_serve.
//
// Opens `connections` client connections, each sending `requests` generate
// calls back-to-back with random program-level arrays, then prints a JSON
// summary with client-side latency quantiles and the server's own metrics.
//
// Run:  ./flashgen_loadgen [socket_path] [model] [requests] [connections] [side] [seed] [deadline_us]
//   socket_path  default /tmp/flashgen_serve.sock
//   model        default Gaussian (must match a name the server registered)
//   requests     default 256 per connection
//   connections  default 4
//   side         default 16 (must match the served model's array size)
//   seed         default 1 (request i on connection c uses stream c*requests+i)
//   deadline_us  default 0 (no per-request deadline)
//
// Requests the server rejects with kOverloaded are counted as "shed" rather
// than aborting the run, so the tool can probe overload behavior directly.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/normalization.h"
#include "serve/metrics.h"
#include "serve/server.h"

using namespace flashgen;

int main(int argc, char** argv) {
  const std::string socket_path = argc > 1 ? argv[1] : "/tmp/flashgen_serve.sock";
  const std::string model = argc > 2 ? argv[2] : "Gaussian";
  const int requests = argc > 3 ? std::atoi(argv[3]) : 256;
  const int connections = argc > 4 ? std::atoi(argv[4]) : 4;
  const auto side = static_cast<std::uint32_t>(argc > 5 ? std::atoi(argv[5]) : 16);
  const auto seed = static_cast<std::uint64_t>(argc > 6 ? std::atoll(argv[6]) : 1);
  const auto deadline_us = static_cast<std::uint64_t>(argc > 7 ? std::atoll(argv[7]) : 0);

  data::VoltageNormalizer normalizer;
  serve::LatencyHistogram latency;
  std::mutex latency_mutex;
  std::atomic<std::uint64_t> shed{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client(socket_path);
      Rng rng(seed + static_cast<std::uint64_t>(c) + 1);
      serve::GenerateRequest request;
      request.model = model;
      request.seed = seed;
      request.side = side;
      request.deadline_micros = deadline_us;
      request.program_levels.resize(static_cast<std::size_t>(side) * side);
      for (int i = 0; i < requests; ++i) {
        for (float& v : request.program_levels)
          v = normalizer.normalize_level(static_cast<int>(rng.uniform_int(8)));
        request.stream = static_cast<std::uint64_t>(c) * static_cast<std::uint64_t>(requests) +
                         static_cast<std::uint64_t>(i);
        const auto r0 = std::chrono::steady_clock::now();
        try {
          (void)client.generate(request);
        } catch (const serve::Overloaded&) {
          shed.fetch_add(1);
          continue;
        }
        const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - r0);
        std::lock_guard<std::mutex> lock(latency_mutex);
        latency.record(static_cast<std::uint64_t>(micros.count()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  serve::Client stats_client(socket_path);
  const std::string server_stats = stats_client.stats();

  const auto total = static_cast<double>(requests) * connections;
  std::printf("{\"model\": \"%s\", \"requests\": %d, \"connections\": %d, \"side\": %u,\n",
              model.c_str(), requests * connections, connections, side);
  std::printf(" \"shed\": %llu,\n", static_cast<unsigned long long>(shed.load()));
  std::printf(" \"elapsed_sec\": %.3f, \"requests_per_sec\": %.1f,\n", elapsed, total / elapsed);
  std::printf(" \"client_p50_us\": %llu, \"client_p90_us\": %llu, \"client_p99_us\": %llu,\n",
              static_cast<unsigned long long>(latency.quantile_micros(0.50)),
              static_cast<unsigned long long>(latency.quantile_micros(0.90)),
              static_cast<unsigned long long>(latency.quantile_micros(0.99)));
  std::printf(" \"server\": %s}\n", server_stats.c_str());
  return 0;
}
