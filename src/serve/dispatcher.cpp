#include "serve/dispatcher.h"

#include <chrono>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/stats.h"

namespace flashgen::serve {

ReplicaDispatcher::ReplicaDispatcher(std::vector<InferenceEngine*> engines,
                                     tensor::Shape row_shape, BatchPolicy policy,
                                     ServeMetrics* metrics)
    : row_shape_(std::move(row_shape)), policy_(policy), metrics_(metrics) {
  FG_CHECK(!engines.empty(), "ReplicaDispatcher: need at least one engine");
  slots_.reserve(engines.size());
  for (InferenceEngine* engine : engines) {
    FG_CHECK(engine != nullptr, "ReplicaDispatcher: null engine");
    Slot slot;
    slot.batcher = std::make_unique<RequestBatcher>(*engine, row_shape_, policy_, metrics_);
    slots_.push_back(std::move(slot));
  }
  slot_count_ = slots_.size();
}

ReplicaDispatcher::ReplicaDispatcher(ModelRegistry& registry, const std::string& model,
                                     BatchPolicy policy, SupervisorPolicy supervisor,
                                     ServeMetrics* metrics)
    : policy_(policy),
      supervisor_policy_(supervisor),
      metrics_(metrics),
      registry_(&registry),
      model_name_(model) {
  ModelRegistry::Entry& entry = registry.at(model);
  row_shape_ = entry.row_shape;
  slots_.reserve(entry.replicas.size());
  for (ModelRegistry::Replica& replica : entry.replicas) {
    Slot slot;
    slot.batcher =
        std::make_unique<RequestBatcher>(*replica.engine, row_shape_, policy_, metrics_);
    slots_.push_back(std::move(slot));
  }
  slot_count_ = slots_.size();
  FG_CHECK(supervisor_policy_.check_interval_micros > 0,
           "ReplicaDispatcher: supervisor check interval must be positive");
  supervisor_ = std::thread([this] { supervise(); });
}

ReplicaDispatcher::~ReplicaDispatcher() {
  if (supervisor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sup_mutex_);
      sup_stop_ = true;
    }
    sup_cv_.notify_all();
    supervisor_.join();
  }
  // ~Slot -> ~RequestBatcher aborts whatever is still queued or wedged.
}

std::size_t ReplicaDispatcher::pick_replica_locked() const {
  std::size_t best = slots_.size();
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.quarantined || slot.batcher == nullptr) continue;
    // Strict < keeps ties on the lowest index: deterministic routing under
    // equal load, so tests (and tracing) can predict placement.
    const std::size_t load = slot.batcher->outstanding();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

void ReplicaDispatcher::submit_async(std::vector<float> program_levels, std::uint64_t seed,
                                     std::uint64_t stream, std::uint64_t deadline_micros,
                                     RequestBatcher::Completion done) {
  submit_async(std::move(program_levels), seed, stream, deadline_micros, std::nullopt,
               std::move(done));
}

void ReplicaDispatcher::submit_async(std::vector<float> program_levels, std::uint64_t seed,
                                     std::uint64_t stream, std::uint64_t deadline_micros,
                                     std::optional<data::Condition> condition,
                                     RequestBatcher::Completion done) {
  // Pick and submit under the dispatcher lock so the supervisor cannot tear
  // the chosen batcher down between the two. The submit itself is cheap
  // (queue push + notify), and per-replica loads drain concurrently, so the
  // pick only skews balance, never correctness: any replica produces
  // bit-identical results, and the admission bound is enforced
  // authoritatively inside the chosen batcher's submit.
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t best = pick_replica_locked();
  if (best == slots_.size()) {
    if (metrics_ != nullptr) metrics_->record_shed();
    static stats::Counter& shed_total = stats::counter("serve.shed");
    shed_total.add();
    throw Overloaded("no healthy replicas (all quarantined); retry after restart");
  }
  slots_[best].batcher->submit_async(std::move(program_levels), seed, stream, deadline_micros,
                                     condition, std::move(done));
}

ResponseFuture ReplicaDispatcher::submit(std::vector<float> program_levels, std::uint64_t seed,
                                         std::uint64_t stream, std::uint64_t deadline_micros) {
  auto promise = std::make_shared<std::promise<ResponseFuture::Outcome>>();
  ResponseFuture future(promise->get_future());
  submit_async(std::move(program_levels), seed, stream, deadline_micros,
               [promise](std::vector<float>&& voltages, std::exception_ptr error) {
                 promise->set_value(ResponseFuture::classify(std::move(voltages), std::move(error)));
               });
  return future;
}

ResponseFuture ReplicaDispatcher::submit(std::vector<float> program_levels, std::uint64_t seed,
                                         std::uint64_t stream, std::uint64_t deadline_micros,
                                         const data::Condition& condition) {
  auto promise = std::make_shared<std::promise<ResponseFuture::Outcome>>();
  ResponseFuture future(promise->get_future());
  submit_async(std::move(program_levels), seed, stream, deadline_micros, condition,
               [promise](std::vector<float>&& voltages, std::exception_ptr error) {
                 promise->set_value(ResponseFuture::classify(std::move(voltages), std::move(error)));
               });
  return future;
}

void ReplicaDispatcher::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  for (Slot& slot : slots_) {
    if (slot.batcher != nullptr) slot.batcher->close();
  }
}

void ReplicaDispatcher::drain() {
  // Polling drain instead of per-batcher blocking waits: the supervisor may
  // swap a batcher out (quarantine) mid-drain, which would leave a blocking
  // waiter on a destroyed condition variable. A quarantine answers all of
  // the victim's requests (typed errors), so outstanding() reaching zero is
  // exactly "every admitted request has been answered".
  while (true) {
    if (outstanding() == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::size_t ReplicaDispatcher::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const Slot& slot : slots_) {
    if (slot.batcher != nullptr) total += slot.batcher->outstanding();
  }
  return total;
}

std::size_t ReplicaDispatcher::healthy_replicas() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t healthy = 0;
  for (const Slot& slot : slots_) {
    if (!slot.quarantined && slot.batcher != nullptr) ++healthy;
  }
  return healthy;
}

std::size_t ReplicaDispatcher::quarantined_replicas() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t quarantined = 0;
  for (const Slot& slot : slots_) {
    if (slot.quarantined) ++quarantined;
  }
  return quarantined;
}

std::size_t ReplicaDispatcher::least_loaded_replica() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pick_replica_locked();
}

const RequestBatcher& ReplicaDispatcher::batcher(std::size_t replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  FG_CHECK(replica < slots_.size(), "ReplicaDispatcher: no replica " << replica);
  FG_CHECK(slots_[replica].batcher != nullptr,
           "ReplicaDispatcher: replica " << replica << " is quarantined");
  return *slots_[replica].batcher;
}

void ReplicaDispatcher::supervise() {
  std::unique_lock<std::mutex> lock(sup_mutex_);
  while (!sup_stop_) {
    sup_cv_.wait_for(lock,
                     std::chrono::microseconds(supervisor_policy_.check_interval_micros));
    if (sup_stop_) return;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void ReplicaDispatcher::tick() {
  // Quarantine pass: spot wedged / persistently-erroring replicas. The
  // victim batcher is moved out under the dispatcher lock (so routing stops
  // instantly) and torn down outside it (abort_with joins the executor,
  // which can take a while for a genuinely stuck engine).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    std::unique_ptr<RequestBatcher> victim;
    std::uint64_t age_micros = 0;
    std::uint32_t errors = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Slot& slot = slots_[i];
      if (slot.quarantined || slot.batcher == nullptr) continue;
      age_micros = slot.batcher->oldest_outstanding_micros();
      errors = slot.batcher->consecutive_errors();
      const bool wedged = supervisor_policy_.wedge_timeout_micros > 0 &&
                          age_micros > supervisor_policy_.wedge_timeout_micros;
      const bool erroring = supervisor_policy_.max_consecutive_errors > 0 &&
                            errors >= supervisor_policy_.max_consecutive_errors;
      if (!wedged && !erroring) continue;
      victim = std::move(slot.batcher);
      slot.quarantined = true;
      // Bump the counter before the slot's quarantined state is observable
      // outside the lock, so quarantines() never lags quarantined_replicas()
      // (abort_with below joins the executor and can take a while).
      quarantines_.fetch_add(1);
    }
    if (metrics_ != nullptr) metrics_->record_replica_quarantine();
    static stats::Counter& quarantine_total = stats::counter("serve.replica_quarantines");
    quarantine_total.add();
    std::ostringstream os;
    os << "replica " << i << " quarantined (oldest request " << age_micros << "us old, "
       << errors << " consecutive errors); request failed by supervisor";
    victim->abort_with(os.str());
    victim.reset();
  }

  // Restart pass: rebuild quarantined replicas from the registry. Skipped
  // once the dispatcher is closed — a draining fleet only quarantines.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      if (!slots_[i].quarantined) continue;
    }
    if (FG_FAULT("serve_replica_restart")) continue;  // injected failure; retry next tick
    InferenceEngine& engine = registry_->rebuild_replica(model_name_, i);
    auto fresh = std::make_unique<RequestBatcher>(engine, row_shape_, policy_, metrics_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // close() may have landed while we were rebuilding; keep the invariant
      // that every live batcher of a closed dispatcher rejects admission.
      if (closed_) fresh->close();
      slots_[i].batcher = std::move(fresh);
      slots_[i].quarantined = false;
    }
    restarts_.fetch_add(1);
    if (metrics_ != nullptr) metrics_->record_replica_restart();
    static stats::Counter& restart_total = stats::counter("serve.replica_restarts");
    restart_total.add();
  }
}

}  // namespace flashgen::serve
