#include "serve/dispatcher.h"

#include <limits>
#include <utility>

#include "common/error.h"

namespace flashgen::serve {

ReplicaDispatcher::ReplicaDispatcher(std::vector<InferenceEngine*> engines,
                                     tensor::Shape row_shape, BatchPolicy policy,
                                     ServeMetrics* metrics)
    : row_shape_(std::move(row_shape)) {
  FG_CHECK(!engines.empty(), "ReplicaDispatcher: need at least one engine");
  batchers_.reserve(engines.size());
  for (InferenceEngine* engine : engines) {
    FG_CHECK(engine != nullptr, "ReplicaDispatcher: null engine");
    batchers_.push_back(
        std::make_unique<RequestBatcher>(*engine, row_shape_, policy, metrics));
  }
}

void ReplicaDispatcher::submit_async(std::vector<float> program_levels, std::uint64_t seed,
                                     std::uint64_t stream, std::uint64_t deadline_micros,
                                     RequestBatcher::Completion done) {
  // Least-loaded pick. The loads are sampled racily (executors drain them
  // concurrently), which only skews balance, never correctness: any replica
  // produces bit-identical results, and the admission bound is enforced
  // authoritatively inside the chosen batcher's submit.
  std::size_t best = 0;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < batchers_.size(); ++i) {
    const std::size_t load = batchers_[i]->outstanding();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  batchers_[best]->submit_async(std::move(program_levels), seed, stream, deadline_micros,
                                std::move(done));
}

std::future<std::vector<float>> ReplicaDispatcher::submit(std::vector<float> program_levels,
                                                          std::uint64_t seed,
                                                          std::uint64_t stream,
                                                          std::uint64_t deadline_micros) {
  auto promise = std::make_shared<std::promise<std::vector<float>>>();
  std::future<std::vector<float>> future = promise->get_future();
  submit_async(std::move(program_levels), seed, stream, deadline_micros,
               [promise](std::vector<float>&& voltages, std::exception_ptr error) {
                 if (error) {
                   promise->set_exception(std::move(error));
                 } else {
                   promise->set_value(std::move(voltages));
                 }
               });
  return future;
}

void ReplicaDispatcher::close() {
  for (auto& b : batchers_) b->close();
}

void ReplicaDispatcher::drain() {
  for (auto& b : batchers_) b->drain();
}

std::size_t ReplicaDispatcher::outstanding() const {
  std::size_t total = 0;
  for (const auto& b : batchers_) total += b->outstanding();
  return total;
}

}  // namespace flashgen::serve
