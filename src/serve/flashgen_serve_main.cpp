// flashgen_serve: batched inference server for trained channel models.
//
// Trains (or loads from the checkpoint cache) the requested models under the
// small experiment configuration, registers them in a ModelRegistry, and
// serves the length-prefixed binary protocol — on a unix socket or TCP —
// until stdin closes, a line is entered, or SIGTERM/SIGINT arrives. Shutdown
// is always a graceful drain: the admission queues close (new requests are
// answered kOverloaded, health probes kDraining), in-flight requests complete
// and their responses flush, then the final metrics JSON is printed.
//
// Run:  ./flashgen_serve [flags] [endpoint] [models_csv] [max_batch] [max_wait_us]
//   endpoint     default /tmp/flashgen_serve.sock; accepts "unix:/path", a
//                bare path, or "tcp:host:port" ("tcp:127.0.0.1:0" picks a
//                free port and prints it)
//   models_csv   default "Gaussian"; any of cVAE-GAN,Bicycle-GAN,cGAN,cVAE,
//                Gaussian,Temporal (case-insensitive, matched without '-').
//                Temporal is the (PE, retention)-conditioned model: it trains
//                on a small multi-condition grid and additionally answers
//                kThresholdQuery (wear-aware read-threshold optimization)
//   max_batch    default 8
//   max_wait_us  default 2000
// Flags:
//   --tcp               shorthand for the endpoint "tcp:127.0.0.1:7070"
//                       (overridden by an explicit endpoint positional)
//   --replicas=N        replica engines per model behind the least-loaded
//                       dispatcher, each with its own batcher + executor
//                       thread (default 1); responses are bit-identical for
//                       any replica count
//   --backlog=N         listen() backlog (default SOMAXCONN)
//   --resume            resume interrupted training from its snapshot, and
//                       write snapshots while training (see --snapshot-every)
//   --snapshot-every=N  training snapshot period in optimizer steps
//                       (default 64 when --resume is given, else disabled)
//   --max-queue=N       admission queue bound per replica; beyond it requests
//                       are rejected with kOverloaded (default 128, 0 = off)
//   --tenant-rate=R     per-tenant token-bucket admission rate, requests/sec;
//                       over-rate tenants are shed with kRateLimited carrying
//                       retry_after_micros (default 0 = unlimited)
//   --tenant-burst=B    token-bucket capacity per tenant (default: max(R, 1))
//   --idle-timeout-ms=N evict connections with no protocol progress for N ms
//                       (slow-loris defense; default 0 = off)
//   --wedge-timeout-ms=N supervisor quarantines + restarts a replica whose
//                       oldest request is older than N ms (default 2000,
//                       0 = off)
//   --max-pipelined=N   in-flight pipelined requests allowed per connection
//                       (default 4096)
//   --max-conn-bytes=N  buffered bytes allowed per connection, either
//                       direction (default 2x max frame size)
//
// Pair with ./flashgen_loadgen to drive traffic and read back metrics.
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/flashgen.h"
#include "serve/server.h"

using namespace flashgen;

namespace {

std::string canon(std::string s) {
  std::string out;
  for (char c : s)
    if (c != '-') out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

core::ModelKind parse_kind(const std::string& name) {
  for (core::ModelKind kind :
       {core::ModelKind::CvaeGan, core::ModelKind::BicycleGan, core::ModelKind::Cgan,
        core::ModelKind::Cvae, core::ModelKind::Gaussian, core::ModelKind::Temporal}) {
    if (canon(core::to_string(kind)) == canon(name)) return kind;
  }
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  std::exit(1);
}

// Self-pipe: the signal handler only writes one byte, the main thread polls
// the read end alongside stdin, so shutdown logic runs in normal context.
int g_signal_pipe[2] = {-1, -1};
volatile std::sig_atomic_t g_signal_seen = 0;

void on_signal(int signum) {
  g_signal_seen = signum;
  const char byte = 1;
  // The return value is irrelevant: if the pipe is full a byte is already
  // pending and the poll below will wake regardless.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  bool resume = false;
  bool tcp = false;
  int snapshot_every = -1;  // -1 = unset
  int replicas = 1;
  int backlog = -1;  // -1 = SOMAXCONN
  std::size_t max_queue = 128;
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  std::uint64_t idle_timeout_ms = 0;
  std::uint64_t wedge_timeout_ms = 2000;
  std::size_t max_pipelined = 4096;
  std::size_t max_conn_bytes = 0;  // 0 = keep ServerOptions default
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--resume") {
      resume = true;
    } else if (arg == "--tcp") {
      tcp = true;
    } else if (arg.rfind("--replicas=", 0) == 0) {
      replicas = std::max(1, std::atoi(arg.c_str() + std::strlen("--replicas=")));
    } else if (arg.rfind("--backlog=", 0) == 0) {
      backlog = std::atoi(arg.c_str() + std::strlen("--backlog="));
    } else if (arg.rfind("--snapshot-every=", 0) == 0) {
      snapshot_every = std::atoi(arg.c_str() + std::strlen("--snapshot-every="));
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      max_queue = static_cast<std::size_t>(std::atoll(arg.c_str() + std::strlen("--max-queue=")));
    } else if (arg.rfind("--tenant-rate=", 0) == 0) {
      tenant_rate = std::atof(arg.c_str() + std::strlen("--tenant-rate="));
    } else if (arg.rfind("--tenant-burst=", 0) == 0) {
      tenant_burst = std::atof(arg.c_str() + std::strlen("--tenant-burst="));
    } else if (arg.rfind("--idle-timeout-ms=", 0) == 0) {
      idle_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + std::strlen("--idle-timeout-ms=")));
    } else if (arg.rfind("--wedge-timeout-ms=", 0) == 0) {
      wedge_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + std::strlen("--wedge-timeout-ms=")));
    } else if (arg.rfind("--max-pipelined=", 0) == 0) {
      max_pipelined =
          static_cast<std::size_t>(std::atoll(arg.c_str() + std::strlen("--max-pipelined=")));
    } else if (arg.rfind("--max-conn-bytes=", 0) == 0) {
      max_conn_bytes =
          static_cast<std::size_t>(std::atoll(arg.c_str() + std::strlen("--max-conn-bytes=")));
    } else {
      positional.push_back(arg);
    }
  }
  const std::string endpoint_spec = positional.size() > 0 ? positional[0]
                                    : tcp                 ? "tcp:127.0.0.1:7070"
                                                          : "/tmp/flashgen_serve.sock";
  const std::string models_csv = positional.size() > 1 ? positional[1] : "Gaussian";
  serve::BatchPolicy policy;
  if (positional.size() > 2) policy.max_batch_size = static_cast<std::size_t>(std::atoi(positional[2].c_str()));
  if (positional.size() > 3) policy.max_wait_micros = static_cast<std::uint64_t>(std::atoll(positional[3].c_str()));
  policy.max_queue_depth = max_queue;

  // The temporal model needs a multi-condition train split to learn its
  // (PE, retention) conditioning; the canonical grid keeps its checkpoint
  // shared with the threshold CLI and benches.
  bool wants_temporal = false;
  {
    std::istringstream scan(models_csv);
    for (std::string token; std::getline(scan, token, ',');) {
      wants_temporal |= parse_kind(token) == core::ModelKind::Temporal;
    }
  }
  core::ExperimentConfig config =
      wants_temporal ? core::small_temporal_experiment_config() : core::small_experiment_config();
  if (snapshot_every < 0) snapshot_every = resume ? 64 : 0;
  config.snapshot_every = snapshot_every;
  config.resume_training = resume;
  core::Experiment experiment(config);
  const auto s = static_cast<tensor::Index>(config.network.array_size);

  serve::ModelRegistry registry;
  std::istringstream split(models_csv);
  for (std::string token; std::getline(split, token, ',');) {
    const core::ModelKind kind = parse_kind(token);
    std::printf("loading %s ...\n", core::to_string(kind).c_str());
    registry.add(core::to_string(kind), experiment.train_or_load(kind),
                 tensor::Shape({1, s, s}), policy.max_batch_size);
    // train_or_load is deterministic, so every replica carries identical
    // weights; each gets its own engine + executor thread.
    for (int r = 1; r < replicas; ++r) {
      registry.add_replica(core::to_string(kind), experiment.train_or_load(kind),
                           policy.max_batch_size);
    }
  }

  serve::ServerOptions options;
  options.endpoint = endpoint_spec;
  options.backlog = backlog;
  options.policy = policy;
  options.tenant.rate_per_sec = tenant_rate;
  options.tenant.burst = tenant_burst;
  options.idle_timeout_micros = idle_timeout_ms * 1000;
  options.supervisor.wedge_timeout_micros = wedge_timeout_ms * 1000;
  options.max_pipelined_requests = max_pipelined;
  if (max_conn_bytes > 0) options.max_conn_buffered_bytes = max_conn_bytes;
  serve::Server server(registry, options);
  server.start();
  std::printf(
      "serving %zu model(s) x%d replica(s) on %s (batch<=%zu, wait<=%lluus, queue<=%zu); enter or "
      "SIGTERM to drain\n",
      registry.size(), replicas, server.endpoint().c_str(), policy.max_batch_size,
      static_cast<unsigned long long>(policy.max_wait_micros), policy.max_queue_depth);
  std::fflush(stdout);

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe() failed: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Wait for an operator line on stdin or a termination signal.
  struct pollfd fds[2];
  fds[0] = {.fd = STDIN_FILENO, .events = POLLIN, .revents = 0};
  fds[1] = {.fd = g_signal_pipe[0], .events = POLLIN, .revents = 0};
  while (true) {
    const int r = ::poll(fds, 2, -1);
    if (r < 0 && errno == EINTR) {
      if (g_signal_seen != 0) break;  // signal landed before the pipe byte
      continue;
    }
    if (r < 0) break;
    if (fds[0].revents != 0 || fds[1].revents != 0) break;
  }
  if (g_signal_seen != 0) {
    std::printf("received signal %d; draining\n", static_cast<int>(g_signal_seen));
    std::fflush(stdout);
  }

  server.drain_and_stop();
  std::printf("final metrics: %s\n", server.metrics().to_json().c_str());
  return 0;
}
