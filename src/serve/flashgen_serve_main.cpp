// flashgen_serve: batched inference server for trained channel models.
//
// Trains (or loads from the checkpoint cache) the requested models under the
// small experiment configuration, registers them in a ModelRegistry, and
// serves the length-prefixed binary protocol on a unix socket until stdin
// closes or a line is entered.
//
// Run:  ./flashgen_serve [socket_path] [models_csv] [max_batch] [max_wait_us]
//   socket_path  default /tmp/flashgen_serve.sock
//   models_csv   default "Gaussian"; any of cVAE-GAN,Bicycle-GAN,cGAN,cVAE,
//                Gaussian (case-insensitive, matched without '-')
//   max_batch    default 8
//   max_wait_us  default 2000
//
// Pair with ./flashgen_loadgen to drive traffic and read back metrics.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/flashgen.h"
#include "serve/server.h"

using namespace flashgen;

namespace {

std::string canon(std::string s) {
  std::string out;
  for (char c : s)
    if (c != '-') out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

core::ModelKind parse_kind(const std::string& name) {
  for (core::ModelKind kind :
       {core::ModelKind::CvaeGan, core::ModelKind::BicycleGan, core::ModelKind::Cgan,
        core::ModelKind::Cvae, core::ModelKind::Gaussian}) {
    if (canon(core::to_string(kind)) == canon(name)) return kind;
  }
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string socket_path = argc > 1 ? argv[1] : "/tmp/flashgen_serve.sock";
  const std::string models_csv = argc > 2 ? argv[2] : "Gaussian";
  serve::BatchPolicy policy;
  if (argc > 3) policy.max_batch_size = static_cast<std::size_t>(std::atoi(argv[3]));
  if (argc > 4) policy.max_wait_micros = static_cast<std::uint64_t>(std::atoll(argv[4]));

  core::ExperimentConfig config = core::small_experiment_config();
  core::Experiment experiment(config);
  const auto s = static_cast<tensor::Index>(config.network.array_size);

  serve::ModelRegistry registry;
  std::istringstream split(models_csv);
  for (std::string token; std::getline(split, token, ',');) {
    const core::ModelKind kind = parse_kind(token);
    std::printf("loading %s ...\n", core::to_string(kind).c_str());
    registry.add(core::to_string(kind), experiment.train_or_load(kind),
                 tensor::Shape({1, s, s}), policy.max_batch_size);
  }

  serve::Server server(registry, socket_path, policy);
  server.start();
  std::printf("serving %zu model(s) on %s (batch<=%zu, wait<=%lluus); press enter to stop\n",
              registry.size(), socket_path.c_str(), policy.max_batch_size,
              static_cast<unsigned long long>(policy.max_wait_micros));
  std::fflush(stdout);

  std::getchar();  // blocks until a line or EOF
  server.stop();
  std::printf("final metrics: %s\n", server.metrics().to_json().c_str());
  return 0;
}
