// Pattern-dependent ICI error statistics — the paper's second evaluation
// metric (Section IV-B, Fig. 5 and Table II).
//
// For interior victim cells programmed to level 0, the surrounding pattern is
// the pair of neighbor program levels in the wordline direction
// (PL_{i,j-1}, PL_{i,j+1}) or the bitline direction (PL_{i-1,j}, PL_{i+1,j});
// an error occurs when the victim's read voltage exceeds the level-0/1
// threshold Vth0. 64 patterns exist per direction.
//
//   Type I  = P(pattern | error)   — how errors distribute across patterns
//   Type II = P(error | pattern)   — how dangerous each pattern is
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "flash/grid.h"
#include "flash/gray_code.h"

namespace flashgen::eval {

inline constexpr int kIciPatterns = flash::kTlcLevels * flash::kTlcLevels;  // 64

/// Encodes a neighbor pair as 8 * first + second, where first = left (WL) or
/// up (BL) and second = right (WL) or down (BL).
int pattern_index(int first, int second);

/// "first 0 second" label, e.g. pattern (7, 7) -> "707".
std::string pattern_label(int pattern);

/// Per-direction counters.
struct IciPatternStats {
  std::array<long, kIciPatterns> occurrences{};
  std::array<long, kIciPatterns> errors{};

  long total_occurrences() const;
  long total_errors() const;
  /// P(pattern | error); 0 when no errors were observed.
  double type1(int pattern) const;
  /// P(error | pattern); 0 when the pattern never occurred.
  double type2(int pattern) const;
};

struct IciAnalysis {
  IciPatternStats wordline;
  IciPatternStats bitline;
  double vth0 = 0.0;  // threshold used for the error decision
};

/// Scans paired (PL, VL) grids and accumulates both directions' statistics.
IciAnalysis analyze_ici(std::span<const flash::Grid<std::uint8_t>> program_levels,
                        std::span<const flash::Grid<float>> voltages, double vth0);

/// Pattern indices sorted by descending Type I probability (error share).
std::vector<int> rank_patterns_by_type1(const IciPatternStats& stats);

/// Pattern indices sorted by descending Type II probability (error rate),
/// considering only patterns with at least `min_occurrences` observations.
std::vector<int> rank_patterns_by_type2(const IciPatternStats& stats,
                                        long min_occurrences = 1);

}  // namespace flashgen::eval
