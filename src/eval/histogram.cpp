#include "eval/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace flashgen::eval {

Histogram::Histogram(const HistogramConfig& config) : config_(config) {
  FG_CHECK(config_.bins > 0, "histogram needs at least one bin");
  FG_CHECK(config_.hi > config_.lo, "histogram range is empty");
  counts_.assign(static_cast<std::size_t>(config_.bins), 0);
}

int Histogram::bin_of(double value) const {
  const double unit = (value - config_.lo) / (config_.hi - config_.lo);
  int bin = static_cast<int>(std::floor(unit * config_.bins));
  bin = std::clamp(bin, 0, config_.bins - 1);
  // The scaled floor above can be off by one at exact bin edges: the divide
  // and multiply each round, so e.g. with the default 650-bin config 39 of
  // the 650 edges land one bin low. Correct against the canonical edge
  // positions lo + i*width (the same expression bin_center uses) so binning
  // is exactly lower-edge-inclusive: a sample equal to interior edge i lands
  // in bin i, and a sample equal to hi lands in the last bin.
  const double width = (config_.hi - config_.lo) / config_.bins;
  while (bin + 1 < config_.bins && value >= config_.lo + (bin + 1) * width) ++bin;
  while (bin > 0 && value < config_.lo + bin * width) --bin;
  return bin;
}

void Histogram::add(double value) {
  ++counts_[static_cast<std::size_t>(bin_of(value))];
  ++total_;
}

long Histogram::count(int bin) const {
  FG_CHECK(bin >= 0 && bin < bins(), "bin " << bin << " out of range");
  return counts_[static_cast<std::size_t>(bin)];
}

double Histogram::bin_center(int bin) const {
  FG_CHECK(bin >= 0 && bin < bins(), "bin " << bin << " out of range");
  const double width = (config_.hi - config_.lo) / config_.bins;
  return config_.lo + (bin + 0.5) * width;
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) return p;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    p[i] = static_cast<double>(counts_[i]) / total_;
  return p;
}

ConditionalHistograms::ConditionalHistograms(const HistogramConfig& config)
    : per_level_{Histogram(config), Histogram(config), Histogram(config), Histogram(config),
                 Histogram(config), Histogram(config), Histogram(config), Histogram(config)},
      overall_(config) {}

void ConditionalHistograms::add(int level, double voltage) {
  FG_CHECK(level >= 0 && level < flash::kTlcLevels, "level out of range: " << level);
  per_level_[static_cast<std::size_t>(level)].add(voltage);
  overall_.add(voltage);
}

void ConditionalHistograms::add_grids(const flash::Grid<std::uint8_t>& levels,
                                      const flash::Grid<float>& voltages) {
  FG_CHECK(levels.rows() == voltages.rows() && levels.cols() == voltages.cols(),
           "paired grids must have identical shapes");
  for (int r = 0; r < levels.rows(); ++r)
    for (int c = 0; c < levels.cols(); ++c) add(levels(r, c), voltages(r, c));
}

const Histogram& ConditionalHistograms::level(int level) const {
  FG_CHECK(level >= 0 && level < flash::kTlcLevels, "level out of range: " << level);
  return per_level_[static_cast<std::size_t>(level)];
}

double tv_distance(const Histogram& p, const Histogram& q) {
  FG_CHECK(p.bins() == q.bins() && p.config().lo == q.config().lo &&
               p.config().hi == q.config().hi,
           "tv_distance requires identical histogram binning");
  const auto pp = p.pmf();
  const auto qq = q.pmf();
  double acc = 0.0;
  for (std::size_t i = 0; i < pp.size(); ++i) acc += std::fabs(pp[i] - qq[i]);
  return 0.5 * acc;
}

}  // namespace flashgen::eval
