#include "eval/ici_analysis.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace flashgen::eval {

int pattern_index(int first, int second) {
  FG_CHECK(first >= 0 && first < flash::kTlcLevels && second >= 0 &&
               second < flash::kTlcLevels,
           "neighbor levels out of range: " << first << ", " << second);
  return flash::kTlcLevels * first + second;
}

std::string pattern_label(int pattern) {
  FG_CHECK(pattern >= 0 && pattern < kIciPatterns, "pattern index out of range: " << pattern);
  const int first = pattern / flash::kTlcLevels;
  const int second = pattern % flash::kTlcLevels;
  return std::to_string(first) + "0" + std::to_string(second);
}

long IciPatternStats::total_occurrences() const {
  return std::accumulate(occurrences.begin(), occurrences.end(), 0L);
}

long IciPatternStats::total_errors() const {
  return std::accumulate(errors.begin(), errors.end(), 0L);
}

double IciPatternStats::type1(int pattern) const {
  FG_CHECK(pattern >= 0 && pattern < kIciPatterns, "pattern index out of range");
  const long total = total_errors();
  return total > 0 ? static_cast<double>(errors[static_cast<std::size_t>(pattern)]) / total
                   : 0.0;
}

double IciPatternStats::type2(int pattern) const {
  FG_CHECK(pattern >= 0 && pattern < kIciPatterns, "pattern index out of range");
  const long occ = occurrences[static_cast<std::size_t>(pattern)];
  return occ > 0 ? static_cast<double>(errors[static_cast<std::size_t>(pattern)]) / occ : 0.0;
}

IciAnalysis analyze_ici(std::span<const flash::Grid<std::uint8_t>> program_levels,
                        std::span<const flash::Grid<float>> voltages, double vth0) {
  FG_CHECK(program_levels.size() == voltages.size(),
           "paired grid lists differ in length: " << program_levels.size() << " vs "
                                                  << voltages.size());
  IciAnalysis analysis;
  analysis.vth0 = vth0;
  for (std::size_t g = 0; g < program_levels.size(); ++g) {
    const auto& pl = program_levels[g];
    const auto& vl = voltages[g];
    FG_CHECK(pl.rows() == vl.rows() && pl.cols() == vl.cols(),
             "paired grids must have identical shapes");
    // Interior cells only: both neighbors must exist in the scanned direction.
    for (int r = 1; r + 1 < pl.rows(); ++r) {
      for (int c = 1; c + 1 < pl.cols(); ++c) {
        if (pl(r, c) != 0) continue;  // victims are level-0 cells
        const bool error = vl(r, c) > vth0;
        const int wl = pattern_index(pl(r, c - 1), pl(r, c + 1));
        const int bl = pattern_index(pl(r - 1, c), pl(r + 1, c));
        ++analysis.wordline.occurrences[static_cast<std::size_t>(wl)];
        ++analysis.bitline.occurrences[static_cast<std::size_t>(bl)];
        if (error) {
          ++analysis.wordline.errors[static_cast<std::size_t>(wl)];
          ++analysis.bitline.errors[static_cast<std::size_t>(bl)];
        }
      }
    }
  }
  return analysis;
}

std::vector<int> rank_patterns_by_type1(const IciPatternStats& stats) {
  std::vector<int> order(kIciPatterns);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&stats](int a, int b) {
    return stats.errors[static_cast<std::size_t>(a)] > stats.errors[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<int> rank_patterns_by_type2(const IciPatternStats& stats, long min_occurrences) {
  std::vector<int> order;
  for (int p = 0; p < kIciPatterns; ++p) {
    if (stats.occurrences[static_cast<std::size_t>(p)] >= min_occurrences) order.push_back(p);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&stats](int a, int b) { return stats.type2(a) > stats.type2(b); });
  return order;
}

}  // namespace flashgen::eval
