#include "eval/thresholds.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace flashgen::eval {

namespace {

// Moving-average smoothing keeps the log-PDF crossing search robust against
// empty bins in the tails.
std::vector<double> smooth(const std::vector<double>& pmf, int window) {
  if (window <= 1) return pmf;
  std::vector<double> out(pmf.size(), 0.0);
  const int half = window / 2;
  for (int i = 0; i < static_cast<int>(pmf.size()); ++i) {
    double acc = 0.0;
    int n = 0;
    for (int j = std::max(0, i - half); j <= std::min<int>(pmf.size() - 1, i + half); ++j) {
      acc += pmf[static_cast<std::size_t>(j)];
      ++n;
    }
    out[static_cast<std::size_t>(i)] = acc / n;
  }
  return out;
}

int argmax(const std::vector<double>& v) {
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace

flash::Thresholds thresholds_from_histograms(const ConditionalHistograms& hists,
                                             int smoothing_window) {
  FG_CHECK(smoothing_window >= 1, "smoothing window must be >= 1");
  flash::Thresholds thresholds{};
  std::array<std::vector<double>, flash::kTlcLevels> pdfs;
  for (int level = 0; level < flash::kTlcLevels; ++level) {
    pdfs[level] = smooth(hists.level(level).pmf(), smoothing_window);
  }
  const Histogram& ref = hists.level(0);
  double previous = ref.config().lo;
  for (int k = 0; k + 1 < flash::kTlcLevels; ++k) {
    const auto& lower = pdfs[k];
    const auto& upper = pdfs[k + 1];
    const int peak_lo = argmax(lower);
    const int peak_hi = argmax(upper);
    double threshold;
    if (peak_lo < peak_hi) {
      // First bin between the modes where the upper-level PDF overtakes the
      // lower-level PDF — the log-scale intersection of the paper's figures.
      int crossing = -1;
      for (int b = peak_lo; b <= peak_hi; ++b) {
        if (upper[static_cast<std::size_t>(b)] >= lower[static_cast<std::size_t>(b)]) {
          crossing = b;
          break;
        }
      }
      threshold = ref.bin_center(crossing >= 0 ? crossing : (peak_lo + peak_hi) / 2);
    } else {
      // Degenerate (e.g. one distribution empty): midpoint of the modes.
      threshold = 0.5 * (ref.bin_center(peak_lo) + ref.bin_center(peak_hi));
    }
    // Enforce strict monotonicity so downstream detection stays valid.
    if (threshold <= previous) {
      const double bin_width = (ref.config().hi - ref.config().lo) / ref.bins();
      threshold = previous + bin_width;
    }
    thresholds[static_cast<std::size_t>(k)] = threshold;
    previous = threshold;
  }
  flash::validate_thresholds(thresholds);
  return thresholds;
}

}  // namespace flashgen::eval
