// Voltage histograms and conditional (per-program-level) PDF estimation —
// the paper's first evaluation metric (Section IV, "PDF").
#pragma once

#include <array>
#include <span>
#include <vector>

#include "flash/grid.h"
#include "flash/gray_code.h"

namespace flashgen::eval {

struct HistogramConfig {
  double lo = -350.0;
  double hi = 950.0;
  int bins = 650;  // 2 DAC-step resolution over the default range
};

/// Fixed-range histogram; out-of-range samples are clamped into the edge bins
/// (mirroring the paper's pre-processing of extreme erased-state voltages).
class Histogram {
 public:
  explicit Histogram(const HistogramConfig& config = {});

  void add(double value);
  long total() const { return total_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  long count(int bin) const;
  /// Center voltage of a bin.
  double bin_center(int bin) const;
  /// Bin index for a voltage (clamped).
  int bin_of(double value) const;
  /// Probability mass function: counts normalized to sum 1 (all zeros if
  /// the histogram is empty).
  std::vector<double> pmf() const;

  const HistogramConfig& config() const { return config_; }

 private:
  HistogramConfig config_;
  std::vector<long> counts_;
  long total_ = 0;
};

/// Per-level conditional histograms plus the overall (combined) histogram.
class ConditionalHistograms {
 public:
  explicit ConditionalHistograms(const HistogramConfig& config = {});

  void add(int level, double voltage);

  /// Accumulates every cell of the paired grids.
  void add_grids(const flash::Grid<std::uint8_t>& levels, const flash::Grid<float>& voltages);

  const Histogram& level(int level) const;
  const Histogram& overall() const { return overall_; }

 private:
  std::array<Histogram, flash::kTlcLevels> per_level_;
  Histogram overall_;
};

/// Total variation distance between two histograms over the same binning:
/// d_TV = 1/2 * sum_bins |p - q|. Requires matching configs.
double tv_distance(const Histogram& p, const Histogram& q);

}  // namespace flashgen::eval
