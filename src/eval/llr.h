// Soft-read log-likelihood ratios (LLRs) from estimated conditional PDFs.
//
// A soft-decision ECC decoder (e.g. LDPC) consumes, for each page bit, the
// log-ratio of the bit being 1 vs 0 given the cell's soft read voltage:
//
//   LLR_page(v) = log  P(v | bit(page) = 1) / P(v | bit(page) = 0)
//
// with the bit-conditional densities obtained by mixing the per-level
// conditional PDFs through the Gray page mapping (uniform level priors, as
// with pseudo-random data). This is a primary downstream consumer of the
// generative channel model: LLR tables can be computed from *generated*
// voltages without densely soft-reading real silicon.
#pragma once

#include <vector>

#include "eval/histogram.h"
#include "flash/gray_code.h"

namespace flashgen::eval {

/// Per-voltage-bin LLRs for one page.
class LlrTable {
 public:
  /// Builds the table from per-level conditional histograms. `clamp` bounds
  /// |LLR| (decoder saturation); `eps` smooths empty bins.
  LlrTable(const ConditionalHistograms& hists, flash::Page page, double clamp = 20.0,
           double eps = 1e-9);

  /// LLR for a voltage (nearest-bin lookup, clamped to the table range).
  double at(double voltage) const;

  flash::Page page() const { return page_; }
  int bins() const { return static_cast<int>(llr_.size()); }
  const std::vector<double>& values() const { return llr_; }

  /// Hard decision implied by the soft value: bit = 1 iff LLR > 0.
  int hard_bit(double voltage) const { return at(voltage) > 0.0 ? 1 : 0; }

 private:
  flash::Page page_;
  HistogramConfig binning_;
  std::vector<double> llr_;
};

/// Fraction of cells whose sign(LLR) disagrees with the stored page bit —
/// the soft-detection page BER implied by a (possibly generated) channel
/// characterization, evaluated against paired (PL, VL) grids.
double llr_page_error_rate(const LlrTable& table,
                           std::span<const flash::Grid<std::uint8_t>> program_levels,
                           std::span<const flash::Grid<float>> voltages);

}  // namespace flashgen::eval
