// Additional distribution distances between voltage histograms, complementing
// the paper's total-variation metric: KL divergence, Jensen-Shannon
// divergence, and 1-D Wasserstein-1 (earth mover's) distance.
#pragma once

#include "eval/histogram.h"

namespace flashgen::eval {

/// KL(P || Q) over matching binnings, with additive smoothing `eps` applied
/// to both PMFs so empty bins don't produce infinities. Nats.
double kl_divergence(const Histogram& p, const Histogram& q, double eps = 1e-9);

/// Jensen-Shannon divergence (symmetric, bounded by ln 2). Nats.
double js_divergence(const Histogram& p, const Histogram& q, double eps = 1e-9);

/// Wasserstein-1 distance between the two distributions, in voltage units:
/// the integral of |CDF_P - CDF_Q| over the histogram range.
double wasserstein1(const Histogram& p, const Histogram& q);

}  // namespace flashgen::eval
