#include "eval/llr.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace flashgen::eval {

LlrTable::LlrTable(const ConditionalHistograms& hists, flash::Page page, double clamp,
                   double eps)
    : page_(page), binning_(hists.overall().config()) {
  FG_CHECK(clamp > 0.0, "LLR clamp must be positive");
  FG_CHECK(eps > 0.0, "LLR smoothing must be positive");
  const int bins = hists.overall().bins();
  std::vector<double> density_one(bins, eps);
  std::vector<double> density_zero(bins, eps);
  // Uniform level priors: pseudo-random data makes every level equally
  // likely, so the bit-conditional density is the mean of the member levels'
  // conditional PMFs.
  int levels_one = 0, levels_zero = 0;
  for (int level = 0; level < flash::kTlcLevels; ++level) {
    const bool is_one = flash::level_to_bits(level)[page] == 1;
    (is_one ? levels_one : levels_zero) += 1;
  }
  FG_CHECK(levels_one > 0 && levels_zero > 0, "page maps all levels to one bit value");
  for (int level = 0; level < flash::kTlcLevels; ++level) {
    const auto pmf = hists.level(level).pmf();
    const bool is_one = flash::level_to_bits(level)[page] == 1;
    auto& density = is_one ? density_one : density_zero;
    const double weight = 1.0 / (is_one ? levels_one : levels_zero);
    for (int b = 0; b < bins; ++b) density[static_cast<std::size_t>(b)] += weight * pmf[b];
  }
  llr_.resize(static_cast<std::size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    const double raw = std::log(density_one[b]) - std::log(density_zero[b]);
    llr_[static_cast<std::size_t>(b)] = std::clamp(raw, -clamp, clamp);
  }
}

double LlrTable::at(double voltage) const {
  const double unit = (voltage - binning_.lo) / (binning_.hi - binning_.lo);
  const int bin =
      std::clamp(static_cast<int>(std::floor(unit * binning_.bins)), 0, binning_.bins - 1);
  return llr_[static_cast<std::size_t>(bin)];
}

double llr_page_error_rate(const LlrTable& table,
                           std::span<const flash::Grid<std::uint8_t>> program_levels,
                           std::span<const flash::Grid<float>> voltages) {
  FG_CHECK(program_levels.size() == voltages.size(),
           "paired grid lists differ in length");
  long cells = 0;
  long errors = 0;
  for (std::size_t g = 0; g < program_levels.size(); ++g) {
    const auto& pl = program_levels[g];
    const auto& vl = voltages[g];
    FG_CHECK(pl.rows() == vl.rows() && pl.cols() == vl.cols(),
             "paired grids must have identical shapes");
    for (int r = 0; r < pl.rows(); ++r)
      for (int c = 0; c < pl.cols(); ++c) {
        const int stored = flash::level_to_bits(pl(r, c))[table.page()];
        const int detected = table.hard_bit(vl(r, c));
        ++cells;
        errors += (stored != detected);
      }
  }
  return cells > 0 ? static_cast<double>(errors) / cells : 0.0;
}

}  // namespace flashgen::eval
