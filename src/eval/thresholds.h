// Hard-read threshold derivation from estimated conditional PDFs.
//
// As in the paper (Section IV-A), the threshold separating adjacent program
// levels is placed at the intersection of their conditional PDFs in the
// logarithmic scale — i.e. the voltage between the two modes where the two
// (smoothed) PDFs cross.
#pragma once

#include "eval/histogram.h"
#include "flash/read.h"

namespace flashgen::eval {

/// Derives the 7 thresholds from conditional histograms. Each threshold is
/// the crossing of smoothed adjacent-level PDFs between their modes, falling
/// back to the midpoint of the modes when the crossing is degenerate (e.g.
/// empty histograms).
flash::Thresholds thresholds_from_histograms(const ConditionalHistograms& hists,
                                             int smoothing_window = 5);

}  // namespace flashgen::eval
