#include "eval/divergences.h"

#include <cmath>

#include "common/error.h"

namespace flashgen::eval {

namespace {
void check_binning(const Histogram& p, const Histogram& q, const char* what) {
  FG_CHECK(p.bins() == q.bins() && p.config().lo == q.config().lo &&
               p.config().hi == q.config().hi,
           what << " requires identical histogram binning");
}

std::vector<double> smoothed_pmf(const Histogram& h, double eps) {
  auto pmf = h.pmf();
  double total = 0.0;
  for (double& v : pmf) {
    v += eps;
    total += v;
  }
  for (double& v : pmf) v /= total;
  return pmf;
}
}  // namespace

double kl_divergence(const Histogram& p, const Histogram& q, double eps) {
  check_binning(p, q, "kl_divergence");
  FG_CHECK(eps > 0.0, "kl_divergence smoothing must be positive");
  const auto pp = smoothed_pmf(p, eps);
  const auto qq = smoothed_pmf(q, eps);
  double acc = 0.0;
  for (std::size_t i = 0; i < pp.size(); ++i) acc += pp[i] * std::log(pp[i] / qq[i]);
  return std::max(0.0, acc);
}

double js_divergence(const Histogram& p, const Histogram& q, double eps) {
  check_binning(p, q, "js_divergence");
  FG_CHECK(eps > 0.0, "js_divergence smoothing must be positive");
  const auto pp = smoothed_pmf(p, eps);
  const auto qq = smoothed_pmf(q, eps);
  double acc = 0.0;
  for (std::size_t i = 0; i < pp.size(); ++i) {
    const double m = 0.5 * (pp[i] + qq[i]);
    acc += 0.5 * pp[i] * std::log(pp[i] / m) + 0.5 * qq[i] * std::log(qq[i] / m);
  }
  return std::max(0.0, acc);
}

double wasserstein1(const Histogram& p, const Histogram& q) {
  check_binning(p, q, "wasserstein1");
  const auto pp = p.pmf();
  const auto qq = q.pmf();
  const double bin_width = (p.config().hi - p.config().lo) / p.bins();
  double cdf_gap = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < pp.size(); ++i) {
    cdf_gap += pp[i] - qq[i];
    acc += std::fabs(cdf_gap) * bin_width;
  }
  return acc;
}

}  // namespace flashgen::eval
