#include "dist/trainer.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/trace.h"
#include "tensor/conv.h"
#include "tensor/ops.h"

namespace flashgen::dist {

using models::Tensor;
using tensor::Index;

namespace {

/// Copies rows [row0, row0 + rows) of a batch tensor into a fresh tensor.
Tensor slice_rows(const Tensor& t, Index row0, Index rows) {
  std::vector<Index> dims = t.shape().dims();
  const Index row = t.numel() / dims[0];
  dims[0] = rows;
  auto src = t.data().subspan(static_cast<std::size_t>(row0 * row),
                              static_cast<std::size_t>(rows * row));
  return Tensor::from_data(tensor::Shape(dims), std::vector<float>(src.begin(), src.end()));
}

/// Flattens the accumulated gradients of `params` (empty grad = zeros) into
/// one buffer, with the shard's loss scalar appended so losses ride the same
/// reduction as the gradients and every rank sees identical reduced values.
std::vector<float> harvest_grads(const std::vector<Tensor>& params, float loss) {
  std::size_t total = 1;
  for (const Tensor& p : params) total += static_cast<std::size_t>(p.numel());
  std::vector<float> out;
  out.reserve(total);
  for (const Tensor& p : params) {
    const auto g = p.grad();
    if (g.empty()) {
      out.resize(out.size() + static_cast<std::size_t>(p.numel()), 0.0f);
    } else {
      out.insert(out.end(), g.begin(), g.end());
    }
  }
  out.push_back(loss);
  return out;
}

/// Balanced pairwise binary-tree sum over a power-of-two number of equal-size
/// buffers. Combining adjacent pairs level by level builds the same tree as
/// the recursive halves split, so a contiguous block of leaves is always a
/// subtree — the property the butterfly all-reduce composes across ranks.
std::vector<float> tree_sum(std::vector<std::vector<float>> bufs) {
  std::size_t n = bufs.size();
  FG_CHECK(n > 0 && (n & (n - 1)) == 0, "dist: tree_sum needs a power-of-two count, got " << n);
  while (n > 1) {
    for (std::size_t i = 0; i < n / 2; ++i) {
      auto& a = bufs[2 * i];
      const auto& b = bufs[2 * i + 1];
      FG_CHECK(a.size() == b.size(), "dist: tree_sum buffer size mismatch");
      for (std::size_t j = 0; j < a.size(); ++j) a[j] += b[j];
      if (i != 2 * i) bufs[i] = std::move(bufs[2 * i]);
    }
    n /= 2;
  }
  return std::move(bufs[0]);
}

// ---- batch-norm record wire format --------------------------------------
// u32 record_count | per record: u32 channels, f32 momentum,
//                                channels f32 means, channels f32 vars
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& out, const float* data, std::size_t count) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + count * sizeof(float));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  FG_CHECK(pos + 4 <= in.size(), "dist: truncated bn-stat frame");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  pos += 4;
  return v;
}

void get_f32(const std::vector<std::uint8_t>& in, std::size_t& pos, float* out,
             std::size_t count) {
  FG_CHECK(pos + count * sizeof(float) <= in.size(), "dist: truncated bn-stat frame");
  std::memcpy(out, in.data() + pos, count * sizeof(float));
  pos += count * sizeof(float);
}

std::vector<std::uint8_t> encode_bn_records(const std::vector<tensor::BnStatUpdate>& records) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) {
    put_u32(out, static_cast<std::uint32_t>(r.mean.size()));
    put_f32(out, &r.momentum, 1);
    put_f32(out, r.mean.data(), r.mean.size());
    put_f32(out, r.unbiased_var.data(), r.unbiased_var.size());
  }
  return out;
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FG_CHECK(in.good(), "dist: cannot read " << path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FG_CHECK(out.good(), "dist: cannot write " << path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  FG_CHECK(out.good(), "dist: short write to " << path);
}

}  // namespace

models::TrainStats DistTrainer::fit(models::GenerativeModel& model,
                                    const data::PairedDataset& dataset,
                                    const models::TrainConfig& train, flashgen::Rng& rng) {
  const int world = comm_.world();
  FG_CHECK(world >= 1 && train.batch_size % world == 0,
           "dist: global batch " << train.batch_size << " not divisible by world " << world);
  const Index local_rows = train.batch_size / world;
  pipeline::EagerSource source(dataset, train.batch_size, comm_.rank() * local_rows,
                               local_rows);
  return fit(model, source, train, rng);
}

models::TrainStats DistTrainer::fit(models::GenerativeModel& model,
                                    pipeline::SampleSource& source,
                                    const models::TrainConfig& train, flashgen::Rng& rng) {
  namespace detail = models::detail;
  const int world = comm_.world();
  const int rank = comm_.rank();
  const int shards = config_.num_shards;
  FG_CHECK(shards >= 1 && (shards & (shards - 1)) == 0,
           "dist: num_shards must be a power of two, got " << shards);
  FG_CHECK((world & (world - 1)) == 0,
           "dist: world size must be a power of two, got " << world);
  FG_CHECK(shards % world == 0,
           "dist: num_shards (" << shards << ") must be a multiple of world (" << world << ")");
  FG_CHECK(train.batch_size % shards == 0,
           "dist: global batch " << train.batch_size << " not divisible by " << shards
                                 << " shards");
  FG_CHECK(source.global_batch() == train.batch_size,
           "dist: source serves global batches of " << source.global_batch()
                                                    << " but the global batch is "
                                                    << train.batch_size);
  FG_CHECK(source.batch_rows() == train.batch_size / world,
           "dist: source serves " << source.batch_rows() << " rows per batch, expected "
                                  << train.batch_size / world << " (batch "
                                  << train.batch_size << " over world " << world << ")");
  FG_CHECK(world == 1 || train.sentinel.policy != models::SentinelPolicy::kRollback,
           "dist: the kRollback sentinel policy is unsupported for world > 1 "
           "(a rollback on one rank would desynchronize the others); use kHalt");

  auto stepper = model.make_sharded_stepper(train);
  FG_CHECK(stepper != nullptr,
           "dist: model '" << model.name() << "' does not support data-parallel training");
  const int phases = stepper->num_phases();

  detail::LoopContext ctx;
  ctx.root = &model.root_module();
  for (int ph = 0; ph < phases; ++ph) {
    nn::Adam* opt = &stepper->phase_optimizer(ph);
    if (std::find(ctx.optimizers.begin(), ctx.optimizers.end(), opt) == ctx.optimizers.end()) {
      ctx.optimizers.push_back(opt);
    }
  }

  // Rank 0 owns the snapshot artifact; on resume it ships the bytes to the
  // other ranks, which restore from a rank-local temporary copy so every
  // rank rebuilds identical module/optimizer/RNG state.
  models::TrainConfig local = train;
  std::string tmp_snapshot;
  if (rank != 0) {
    local.snapshot.every_steps = 0;
    local.log_every = 0;
  }
  if (world > 1 && local.snapshot.resume && !train.snapshot.path.empty()) {
    std::vector<std::uint8_t> bytes;
    if (rank == 0 && std::filesystem::exists(train.snapshot.path)) {
      bytes = read_file_bytes(train.snapshot.path);
    }
    comm_.broadcast(bytes, /*root=*/0);
    if (rank != 0) {
      if (bytes.empty()) {
        local.snapshot.path.clear();  // nothing to resume anywhere
      } else {
        tmp_snapshot = train.snapshot.path + ".rank" + std::to_string(rank);
        write_file_bytes(tmp_snapshot, bytes);
        local.snapshot.path = tmp_snapshot;
      }
    }
  }

  const int local_shards = shards / world;
  const Index shard_batch = train.batch_size / shards;
  const int total_steps_planned = detail::total_steps(source, train);
  static stats::Counter& dist_steps = stats::counter("dist.steps");

  models::TrainStats stats;
  double g_acc = 0.0, d_acc = 0.0;
  int acc_n = 0;

  auto step_fn = [&](const Tensor& pl, const Tensor& vl, const Tensor& cond, int step) {
    FG_TRACE_SPAN("dist.step", "dist");
    const float lr = detail::scheduled_lr(train.lr, step, total_steps_planned) *
                     static_cast<float>(ctx.lr_scale);
    stepper->set_lr(lr);

    const int shard0 = rank * local_shards;
    stepper->begin_step(local_shards);
    std::vector<flashgen::Rng> shard_rngs;
    std::vector<Tensor> shard_pl, shard_vl, shard_cond;
    shard_rngs.reserve(static_cast<std::size_t>(local_shards));
    for (int s = 0; s < local_shards; ++s) {
      // Shard RNG streams are indexed by the *global* shard id q, while the
      // batch tensors are this rank's slice and are indexed locally.
      const auto q = static_cast<std::uint64_t>(shard0 + s);
      shard_rngs.push_back(flashgen::Rng::from_stream(
          config_.seed, static_cast<std::uint64_t>(step) * static_cast<std::uint64_t>(shards) + q));
      shard_pl.push_back(slice_rows(pl, s * shard_batch, shard_batch));
      shard_vl.push_back(slice_rows(vl, s * shard_batch, shard_batch));
      shard_cond.push_back(cond.defined() ? slice_rows(cond, s * shard_batch, shard_batch)
                                          : Tensor());
    }

    double phase_loss[2] = {0.0, 0.0};
    for (int ph = 0; ph < phases; ++ph) {
      const std::vector<Tensor>& params = stepper->phase_params(ph);
      std::vector<std::vector<float>> bufs(static_cast<std::size_t>(local_shards));
      std::vector<std::vector<tensor::BnStatUpdate>> bn_records(
          static_cast<std::size_t>(local_shards));
      for (int s = 0; s < local_shards; ++s) {
        // Every shard starts from clean gradients; cross-phase pollution
        // (e.g. the generator loss backpropagating into discriminator
        // parameters) is wiped here before it can be harvested.
        ctx.root->zero_grad();
        tensor::set_bn_stat_sink(&bn_records[static_cast<std::size_t>(s)]);
        double loss = 0.0;
        try {
          loss = stepper->run_phase(ph, s, shard_pl[static_cast<std::size_t>(s)],
                                    shard_vl[static_cast<std::size_t>(s)],
                                    shard_cond[static_cast<std::size_t>(s)],
                                    shard_rngs[static_cast<std::size_t>(s)]);
        } catch (...) {
          tensor::set_bn_stat_sink(nullptr);
          throw;
        }
        tensor::set_bn_stat_sink(nullptr);
        bufs[static_cast<std::size_t>(s)] = harvest_grads(params, static_cast<float>(loss));
      }

      // Local balanced tree over this rank's contiguous shard block, then the
      // butterfly composes the per-rank subtrees into the full balanced tree.
      std::vector<float> reduced = tree_sum(std::move(bufs));
      comm_.all_reduce_tree_sum(reduced);

      const double loss_mean =
          static_cast<double>(reduced.back()) / static_cast<double>(shards);
      phase_loss[ph == 0 ? 0 : 1] = loss_mean;

      // Write the (1/S)-scaled reduced gradients back onto the parameters.
      ctx.root->zero_grad();
      const float inv_shards = 1.0f / static_cast<float>(shards);
      std::size_t off = 0;
      for (const Tensor& p : params) {
        const auto count = static_cast<std::size_t>(p.numel());
        for (std::size_t j = 0; j < count; ++j) reduced[off + j] *= inv_shards;
        tensor::accumulate_grad(*p.impl(),
                                std::span<const float>(reduced.data() + off, count));
        off += count;
      }

      // Divergence guards run on the reduced values, which are identical on
      // every rank — so either all ranks halt or none does, and no rank is
      // left blocked in a collective.
      detail::guard_loss(stepper->phase_label(ph), loss_mean, train.sentinel);
      if (detail::want_grad_norm(train.sentinel)) {
        const double norm = detail::grad_norm(params);
        if (trace::enabled()) trace::counter("dist.grad_norm", norm);
        detail::guard_grad_norm(stepper->phase_label(ph), norm, train.sentinel);
      }

      // Batch-norm running stats: all-gather every rank's deferred updates
      // and replay them in canonical order (rank-ascending, shard-ascending,
      // forward-call order) onto the local buffers through the same update
      // arithmetic as the live path. The record layout per shard is identical
      // on every rank (same layers, same forward order), so record k of a
      // remote blob targets the same layer as record k of the local one.
      std::vector<tensor::BnStatUpdate*> layer_of;
      for (auto& shard_records : bn_records) {
        for (auto& r : shard_records) layer_of.push_back(&r);
      }
      const auto blobs = comm_.all_gather(encode_bn_records([&] {
        std::vector<tensor::BnStatUpdate> flat;
        flat.reserve(layer_of.size());
        for (const auto* r : layer_of) flat.push_back(*r);
        return flat;
      }()));
      for (const auto& blob : blobs) {
        std::size_t pos = 0;
        const std::uint32_t n_records = get_u32(blob, pos);
        FG_CHECK(n_records == layer_of.size(),
                 "dist: peer sent " << n_records << " bn records, expected "
                                    << layer_of.size());
        for (std::uint32_t k = 0; k < n_records; ++k) {
          tensor::BnStatUpdate& tmpl = *layer_of[k];
          const std::uint32_t channels = get_u32(blob, pos);
          FG_CHECK(channels == tmpl.mean.size(),
                   "dist: bn record " << k << " has " << channels << " channels, expected "
                                      << tmpl.mean.size());
          float momentum = 0.0f;
          get_f32(blob, pos, &momentum, 1);
          std::vector<float> mean(channels), var(channels);
          get_f32(blob, pos, mean.data(), channels);
          get_f32(blob, pos, var.data(), channels);
          tensor::apply_bn_stat_update(tmpl.running_mean, tmpl.running_var, momentum, mean,
                                       var);
        }
      }

      stepper->phase_optimizer(ph).step();
    }
    stepper->end_step();
    dist_steps.add();

    const double gl = phases > 1 ? phase_loss[1] : phase_loss[0];
    trace::counter("dist.loss.g", gl);
    g_acc += gl;
    if (phases > 1) {
      trace::counter("dist.loss.d", phase_loss[0]);
      d_acc += phase_loss[0];
    }
    ++acc_n;
    if (train.log_every > 0 && (step + 1) % train.log_every == 0) {
      stats.g_loss_history.push_back(static_cast<float>(g_acc / acc_n));
      if (phases > 1) stats.d_loss_history.push_back(static_cast<float>(d_acc / acc_n));
      if (rank == 0) {
        FG_LOG(Info) << model.name() << "[dist " << world << "w] step " << step + 1 << " G "
                     << g_acc / acc_n << (phases > 1 ? " D " : "")
                     << (phases > 1 ? std::to_string(d_acc / acc_n) : std::string());
      }
      g_acc = d_acc = 0.0;
      acc_n = 0;
    }
  };

  stats.steps = detail::run_training_loop(source, local, rng, step_fn, &ctx);
  if (acc_n > 0) {
    stats.g_loss_history.push_back(static_cast<float>(g_acc / acc_n));
    if (phases > 1) stats.d_loss_history.push_back(static_cast<float>(d_acc / acc_n));
  }
  if (!tmp_snapshot.empty()) {
    std::error_code ec;
    std::filesystem::remove(tmp_snapshot, ec);
  }
  // Leave no rank ahead of the others: the caller (launcher, tests) may
  // immediately tear the mesh down or write artifacts on rank 0.
  comm_.barrier();
  return stats;
}

}  // namespace flashgen::dist
