// Socket-based collective communication for data-parallel training.
//
// A Comm owns one stream-socket file descriptor per peer rank and provides
// the collectives the distributed trainer needs: barrier, broadcast,
// all-gather, ring all-reduce, and the butterfly tree-sum all-reduce whose
// result is bit-identical across power-of-two world sizes (see
// DESIGN.md "Distributed training"). All frames go over the shared
// length-prefixed transport in common/framing.*.
//
// Failure semantics: every socket carries SO_RCVTIMEO/SO_SNDTIMEO, so a dead
// or wedged peer surfaces as a typed CommTimeout after `timeout_ms` instead
// of an unbounded hang; a reset/closed peer surfaces as CommError. On any
// failure the Comm shuts down all of its sockets before throwing, so peers
// blocked on this rank unblock immediately (they observe EOF) rather than
// waiting out their own timeout.
//
// Deadlock freedom with blocking sockets: pairwise exchanges always run
// lower-rank-sends-first, and ring rounds run parity-ordered (even ranks
// send then receive, odd ranks receive then send), so no cycle of ranks can
// be simultaneously blocked on send.
//
// Fault points (common/faultinject.h): "dist_send" / "dist_recv" fire at
// collective send/recv entry and simulate a network partition (all sockets
// are shut down, CommError is thrown).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace flashgen::dist {

/// A collective failed: peer died, connection reset, injected partition, or
/// a protocol violation. After a CommError the Comm is unusable (its sockets
/// have been shut down).
class CommError : public flashgen::Error {
 public:
  explicit CommError(const std::string& what) : flashgen::Error(what) {}
};

/// A collective exceeded the configured timeout (straggler or silent peer).
class CommTimeout : public CommError {
 public:
  explicit CommTimeout(const std::string& what) : CommError(what) {}
};

struct CommConfig {
  /// Per-socket send/receive timeout; <= 0 blocks forever (tests only).
  int timeout_ms = 30000;
};

/// Collective communicator over an already-connected full mesh. Move-only;
/// the destructor closes every peer socket.
class Comm {
 public:
  /// `peer_fds[r]` is a connected stream socket to rank r (the entry at
  /// `rank` is ignored; use -1). Takes ownership of the descriptors.
  Comm(int rank, int world, std::vector<int> peer_fds, const CommConfig& config = {});
  ~Comm();
  Comm(Comm&& other) noexcept;
  Comm& operator=(Comm&& other) noexcept;
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const { return rank_; }
  int world() const { return world_; }

  /// Point-to-point frame send/receive ("dist_send"/"dist_recv" fault
  /// points, dist.bytes_sent/dist.bytes_received counters).
  void send_to(int peer, const std::vector<std::uint8_t>& payload);
  void recv_from(int peer, std::vector<std::uint8_t>& payload);

  /// Dissemination barrier: ceil(log2 world) rounds of tiny frames.
  void barrier();

  /// Copies `data` on `root` to every rank (star topology).
  void broadcast(std::vector<std::uint8_t>& data, int root);

  /// Ring all-gather of per-rank byte blobs; result[r] is rank r's
  /// contribution, identical on every rank. Blobs may differ in size.
  std::vector<std::vector<std::uint8_t>> all_gather(const std::vector<std::uint8_t>& mine);

  /// Ring all-reduce (reduce-scatter + all-gather) elementwise float sum.
  /// Bandwidth-optimal, but the addition order depends on the world size, so
  /// results are NOT bit-comparable across different world sizes.
  void all_reduce_sum(std::vector<float>& data);

  /// Butterfly elementwise float sum over a power-of-two world: log2(world)
  /// rounds of pairwise exchange-and-add. Every rank ends with identical
  /// bits, and when each rank's input is a balanced-tree sum over a
  /// contiguous block of leaves, the result equals the balanced-tree sum
  /// over all leaves — the keystone of cross-world-size bit-identity (see
  /// DESIGN.md).
  void all_reduce_tree_sum(std::vector<float>& data);

 private:
  int fd_for(int peer) const;
  void shutdown_all() noexcept;
  /// Deadlock-free pairwise swap: the lower rank sends first.
  void exchange(int peer, const std::vector<std::uint8_t>& out,
                std::vector<std::uint8_t>& in);

  int rank_ = 0;
  int world_ = 1;
  std::vector<int> fds_;
  CommConfig config_;
};

/// In-process full mesh over socketpair(): comms[r] is rank r's
/// communicator. Used by thread-based unit tests and as the pre-fork mesh of
/// the spawn-local launcher (each forked child keeps comms[child_rank] and
/// drops the rest — descriptors survive fork).
std::vector<Comm> make_local_mesh(int world, const CommConfig& config = {});

/// TCP loopback rendezvous: rank r listens on base_port + r, connects to
/// every lower rank (with retry until `timeout_ms`), and accepts from every
/// higher rank. Returns the connected communicator.
Comm connect_tcp(int rank, int world, std::uint16_t base_port, const CommConfig& config = {});

}  // namespace flashgen::dist
