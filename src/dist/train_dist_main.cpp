// flashgen_train_dist: deterministic data-parallel training launcher.
//
// Three run modes:
//   * world == 1 (default): trains inline in this process.
//   * --spawn-local: builds a socketpair mesh, forks `--world` workers on this
//     machine, and reaps them. The canonical way to run the determinism and
//     fault-tolerance demos on one host.
//   * --rank R --port P: joins a TCP loopback rendezvous as rank R (rank r
//     listens on P + r). Every rank must be launched with the same flags.
//
// Every rank generates the dataset and the model in process from --seed, so
// there is nothing to distribute up front; rank 0 alone writes --out /
// --snapshot artifacts and prints the JSON summary. Checkpoints are
// bit-identical across --world values at a fixed --num-shards / --seed.
//
// Example (two workers, shards fixed at 4):
//   flashgen_train_dist --model cvae_gan --world 2 --spawn-local
//     --num-shards 4 --global-batch 8 --epochs 2 --out model.ckpt
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/faultinject.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "data/dataset.h"
#include "dist/comm.h"
#include "dist/trainer.h"
#include "models/generative_model.h"
#include "pipeline/prefetch.h"

namespace {

using namespace flashgen;

struct Options {
  std::string model = "cvae_gan";
  int world = 1;
  int rank = -1;               // set with --port for TCP rendezvous mode
  int port = 0;
  bool spawn_local = false;
  int epochs = 1;
  int global_batch = 8;
  int num_shards = 4;
  std::uint64_t seed = 2023;
  int arrays = 64;
  int array_size = 8;
  int base_channels = 4;
  float lr = 2e-4f;
  std::string out;
  std::string snapshot;
  int snapshot_every = 0;
  bool resume = false;
  int timeout_ms = 30000;
  std::string faults;
  int faults_rank = -1;        // < 0: apply --faults on every rank
  int prefetch_workers = -1;   // < 0: materialized dataset; >= 0: streamed source
  int queue_depth = 4;
};

void usage(std::ostream& os) {
  os << "usage: flashgen_train_dist [options]\n"
        "  --model NAME        cvae_gan | cgan | cvae | bicycle_gan (default cvae_gan)\n"
        "  --world N           world size (power of two, default 1)\n"
        "  --spawn-local       fork N local workers connected over socketpairs\n"
        "  --rank R --port P   join a TCP loopback rendezvous as rank R\n"
        "  --epochs N          training epochs (default 1)\n"
        "  --global-batch N    global batch size (default 8)\n"
        "  --num-shards S      microbatches per step; fixes the canonical\n"
        "                      computation across world sizes (default 4)\n"
        "  --seed S            base seed (default 2023)\n"
        "  --arrays N          dataset size (default 64)\n"
        "  --array-size S      crop size, power of two (default 8)\n"
        "  --base-channels C   network width (default 4)\n"
        "  --lr LR             Adam learning rate (default 2e-4)\n"
        "  --out PATH          rank 0 writes the trained checkpoint here\n"
        "  --snapshot PATH     rank 0 writes TrainState snapshots here\n"
        "  --snapshot-every N  snapshot period in optimizer steps (default 0)\n"
        "  --resume            resume from --snapshot when it exists\n"
        "  --timeout-ms T      collective timeout (default 30000)\n"
        "  --faults SPEC       FLASHGEN_FAULTS-style fault spec\n"
        "  --faults-rank R     apply --faults only on rank R (default: all)\n"
        "  --prefetch-workers N  stream samples from the simulator instead of\n"
        "                      materializing the dataset: N background producer\n"
        "                      threads per rank (0 generates inline; default\n"
        "                      off — the eager dataset path)\n"
        "  --queue-depth D     bounded prefetch queue depth (default 4)\n";
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int i) {
    FG_CHECK(i + 1 < argc, "missing value for " << argv[i]);
    return std::string(argv[i + 1]);
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (arg == "--model") {
      opt.model = need_value(i++);
    } else if (arg == "--world") {
      opt.world = std::stoi(need_value(i++));
    } else if (arg == "--rank") {
      opt.rank = std::stoi(need_value(i++));
    } else if (arg == "--port") {
      opt.port = std::stoi(need_value(i++));
    } else if (arg == "--spawn-local") {
      opt.spawn_local = true;
    } else if (arg == "--epochs") {
      opt.epochs = std::stoi(need_value(i++));
    } else if (arg == "--global-batch") {
      opt.global_batch = std::stoi(need_value(i++));
    } else if (arg == "--num-shards") {
      opt.num_shards = std::stoi(need_value(i++));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value(i++));
    } else if (arg == "--arrays") {
      opt.arrays = std::stoi(need_value(i++));
    } else if (arg == "--array-size") {
      opt.array_size = std::stoi(need_value(i++));
    } else if (arg == "--base-channels") {
      opt.base_channels = std::stoi(need_value(i++));
    } else if (arg == "--lr") {
      opt.lr = std::stof(need_value(i++));
    } else if (arg == "--out") {
      opt.out = need_value(i++);
    } else if (arg == "--snapshot") {
      opt.snapshot = need_value(i++);
    } else if (arg == "--snapshot-every") {
      opt.snapshot_every = std::stoi(need_value(i++));
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--timeout-ms") {
      opt.timeout_ms = std::stoi(need_value(i++));
    } else if (arg == "--faults") {
      opt.faults = need_value(i++);
    } else if (arg == "--faults-rank") {
      opt.faults_rank = std::stoi(need_value(i++));
    } else if (arg == "--prefetch-workers") {
      opt.prefetch_workers = std::stoi(need_value(i++));
    } else if (arg == "--queue-depth") {
      opt.queue_depth = std::stoi(need_value(i++));
    } else {
      usage(std::cerr);
      FG_CHECK(false, "unknown flag: " << arg);
    }
  }
  return opt;
}

core::ModelKind model_kind(const std::string& name) {
  if (name == "cvae_gan") return core::ModelKind::CvaeGan;
  if (name == "cgan") return core::ModelKind::Cgan;
  if (name == "cvae") return core::ModelKind::Cvae;
  if (name == "bicycle_gan") return core::ModelKind::BicycleGan;
  FG_CHECK(false, "unknown --model '" << name
                                      << "' (expected cvae_gan | cgan | cvae | bicycle_gan)");
  return core::ModelKind::CvaeGan;
}

/// Runs one rank end to end. Seed derivation: `seed` drives the dataset,
/// seed+1 the model init, seed+2 the epoch shuffle, seed+3 the per-shard
/// microbatch streams — all replicated identically on every rank.
int run_rank(dist::Comm comm, const Options& opt) {
  if (!opt.faults.empty() && (opt.faults_rank < 0 || opt.faults_rank == comm.rank())) {
    faultinject::configure(opt.faults, opt.seed);
  }

  const bool streamed = opt.prefetch_workers >= 0;
  data::DatasetConfig dataset_config;
  dataset_config.array_size = opt.array_size;
  dataset_config.num_arrays = opt.arrays;
  if (streamed) {
    // One experiment per sample: size the simulated block to the crop.
    dataset_config.channel.rows = opt.array_size;
    dataset_config.channel.cols = opt.array_size;
  } else {
    dataset_config.channel.rows = 4 * opt.array_size;
    dataset_config.channel.cols = 4 * opt.array_size;
  }

  models::NetworkConfig network;
  network.array_size = opt.array_size;
  network.base_channels = opt.base_channels;
  auto model = core::make_model(model_kind(opt.model), network, opt.seed + 1);

  models::TrainConfig train;
  train.epochs = opt.epochs;
  train.batch_size = opt.global_batch;
  train.lr = opt.lr;
  train.log_every = 0;
  train.snapshot.path = opt.snapshot;
  train.snapshot.every_steps = opt.snapshot_every;
  train.snapshot.resume = opt.resume;

  dist::DistConfig dist_config;
  dist_config.num_shards = opt.num_shards;
  dist_config.seed = opt.seed + 3;

  const int rank = comm.rank();
  const int world = comm.world();
  flashgen::Rng loop_rng(opt.seed + 2);
  dist::DistTrainer trainer(comm, dist_config);
  const auto start = std::chrono::steady_clock::now();
  models::TrainStats stats;
  if (streamed) {
    FG_CHECK(opt.global_batch % world == 0,
             "--global-batch must be divisible by --world for streaming");
    pipeline::StreamConfig stream;
    stream.dataset = dataset_config;
    stream.seed = opt.seed;  // same slot the eager dataset generation uses
    pipeline::PrefetchConfig prefetch;
    prefetch.workers = opt.prefetch_workers;
    prefetch.queue_depth = opt.queue_depth;
    const tensor::Index local_rows = opt.global_batch / world;
    pipeline::PrefetchSource source(stream, opt.global_batch, prefetch,
                                    rank * local_rows, local_rows);
    stats = trainer.fit(*model, source, train, loop_rng);
  } else {
    flashgen::Rng data_rng(opt.seed);
    auto dataset = data::PairedDataset::generate(dataset_config, data_rng);
    stats = trainer.fit(*model, dataset, train, loop_rng);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (rank == 0) {
    if (!opt.out.empty()) model->save(opt.out);
    const double samples = static_cast<double>(stats.steps) * opt.global_batch;
    std::cout << "{\"model\": \"" << opt.model << "\", \"world\": " << world
              << ", \"num_shards\": " << opt.num_shards << ", \"steps\": " << stats.steps
              << ", \"global_batch\": " << opt.global_batch << ", \"seconds\": " << seconds
              << ", \"samples_per_sec\": " << (seconds > 0 ? samples / seconds : 0.0) << "}"
              << std::endl;
  }
  return 0;
}

int run_spawn_local(const Options& opt) {
  dist::CommConfig comm_config{.timeout_ms = opt.timeout_ms};
  auto comms = dist::make_local_mesh(opt.world, comm_config);
  std::vector<pid_t> pids;
  for (int r = 0; r < opt.world; ++r) {
    pid_t pid = fork();
    FG_CHECK(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      // Child r: keep its own communicator, close the inherited descriptors
      // of every other rank so a dead peer surfaces as EOF, not a hang.
      dist::Comm mine = std::move(comms[static_cast<std::size_t>(r)]);
      comms.clear();
      int code = 1;
      try {
        code = run_rank(std::move(mine), opt);
      } catch (const std::exception& e) {
        std::cerr << "[rank " << r << "] " << e.what() << "\n";
      }
      std::_Exit(code);
    }
    pids.push_back(pid);
  }
  comms.clear();  // parent does not participate
  int failures = 0;
  for (std::size_t r = 0; r < pids.size(); ++r) {
    int status = 0;
    if (waitpid(pids[r], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::cerr << "worker rank " << r << " failed\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opt = parse_args(argc, argv);
    FG_CHECK(opt.world >= 1, "--world must be >= 1");
    if (opt.spawn_local && opt.world > 1) return run_spawn_local(opt);
    dist::CommConfig comm_config{.timeout_ms = opt.timeout_ms};
    if (opt.rank >= 0 && opt.world > 1) {
      FG_CHECK(opt.port > 0, "--rank requires --port");
      return run_rank(
          dist::connect_tcp(opt.rank, opt.world, static_cast<std::uint16_t>(opt.port),
                            comm_config),
          opt);
    }
    FG_CHECK(opt.world == 1,
             "--world > 1 requires --spawn-local or --rank/--port rendezvous");
    auto comms = dist::make_local_mesh(1, comm_config);
    return run_rank(std::move(comms[0]), opt);
  } catch (const std::exception& e) {
    std::cerr << "flashgen_train_dist: " << e.what() << "\n";
    return 1;
  }
}
