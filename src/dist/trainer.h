// Deterministic data-parallel training over a Comm.
//
// The canonical computation is defined at the microbatch level: one global
// optimizer step processes `num_shards` (S) microbatches of size
// batch_size / S, and applies (1/S) * tree_sum(per-shard gradients), where
// tree_sum is a balanced binary tree over the S shards. Shard q of global
// step t draws its randomness from Rng::from_stream(seed, t*S + q), and the
// epoch shuffle comes from the loop Rng that every rank seeds identically —
// so the computation is a pure function of (seed, config), independent of
// how the shards are laid out across ranks.
//
// With world size W (power of two, dividing S), rank r runs shards
// [r*S/W, (r+1)*S/W): it tree-sums its contiguous block locally and the
// butterfly all-reduce composes the per-rank partial trees into exactly the
// same balanced tree a single rank would build. Result: checkpoints are
// bit-identical for every W ∈ {1, 2, 4, ...} at fixed (S, seed, config).
// See DESIGN.md "Distributed training" for the full argument (including why
// batch-norm forces the microbatch-level definition).
//
// Snapshots: rank 0 writes TrainState snapshots (PR 4 format); on resume it
// broadcasts the artifact to the other ranks, which restore from a
// rank-local temporary copy. The kRollback sentinel policy is rejected for
// world > 1 (a rollback on one rank would desynchronize the others);
// divergence guards run on the *reduced* loss and gradient norm, which are
// identical on every rank, so a halt is collective.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"
#include "dist/comm.h"
#include "models/generative_model.h"
#include "pipeline/sample_source.h"

namespace flashgen::dist {

struct DistConfig {
  /// Microbatches per global step (S). Power of two, multiple of the world
  /// size, divides TrainConfig::batch_size. Fixing S while varying the world
  /// size is what makes runs bit-comparable across worker counts.
  int num_shards = 1;
  /// Base seed for the per-shard Rng::from_stream counters.
  std::uint64_t seed = 0;
};

class DistTrainer {
 public:
  DistTrainer(Comm& comm, const DistConfig& config) : comm_(comm), config_(config) {}

  /// Trains `model` in place via its ShardedStepper. `rng` drives the epoch
  /// shuffle and must be identically seeded on every rank. Throws
  /// flashgen::Error on configuration errors and CommError/CommTimeout on
  /// collective failures. Wraps `dataset` in a per-rank slice of a
  /// pipeline::EagerSource — each rank materializes only its own rows of
  /// every global batch — and delegates to the source overload below.
  models::TrainStats fit(models::GenerativeModel& model, const data::PairedDataset& dataset,
                         const models::TrainConfig& train, flashgen::Rng& rng);

  /// Source-based training. `source` must be this rank's slice of the global
  /// batch stream: global_batch() == train.batch_size, batch_rows() ==
  /// train.batch_size / world, covering rows [rank * batch_rows,
  /// (rank+1) * batch_rows) of every batch (pipeline sources take the slice
  /// as (row_offset, rows) constructor arguments). Any rng the source
  /// consumes in begin_epoch must be consumed identically on every rank.
  models::TrainStats fit(models::GenerativeModel& model, pipeline::SampleSource& source,
                         const models::TrainConfig& train, flashgen::Rng& rng);

 private:
  Comm& comm_;
  DistConfig config_;
};

}  // namespace flashgen::dist
