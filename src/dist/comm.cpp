#include "dist/comm.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "common/faultinject.h"
#include "common/framing.h"
#include "common/stats.h"
#include "common/trace.h"

namespace flashgen::dist {

namespace {
std::vector<std::uint8_t> floats_to_bytes(const float* data, std::size_t count) {
  std::vector<std::uint8_t> bytes(count * sizeof(float));
  std::memcpy(bytes.data(), data, bytes.size());
  return bytes;
}

void bytes_to_floats(const std::vector<std::uint8_t>& bytes, float* out, std::size_t count) {
  FG_CHECK(bytes.size() == count * sizeof(float),
           "dist: float frame has " << bytes.size() << " bytes, expected "
                                    << count * sizeof(float));
  std::memcpy(out, bytes.data(), bytes.size());
}
}  // namespace

Comm::Comm(int rank, int world, std::vector<int> peer_fds, const CommConfig& config)
    : rank_(rank), world_(world), fds_(std::move(peer_fds)), config_(config) {
  FG_CHECK(world_ >= 1 && rank_ >= 0 && rank_ < world_,
           "dist: bad rank " << rank_ << " for world " << world_);
  FG_CHECK(fds_.size() == static_cast<std::size_t>(world_),
           "dist: " << fds_.size() << " peer fds for world " << world_);
  for (int p = 0; p < world_; ++p) {
    if (p == rank_) continue;
    FG_CHECK(fds_[static_cast<std::size_t>(p)] >= 0, "dist: missing fd for peer " << p);
    framing::set_socket_timeout(fds_[static_cast<std::size_t>(p)], config_.timeout_ms);
  }
}

Comm::~Comm() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Comm::Comm(Comm&& other) noexcept
    : rank_(other.rank_), world_(other.world_), fds_(std::move(other.fds_)),
      config_(other.config_) {
  other.fds_.clear();
}

Comm& Comm::operator=(Comm&& other) noexcept {
  if (this != &other) {
    for (int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
    rank_ = other.rank_;
    world_ = other.world_;
    fds_ = std::move(other.fds_);
    config_ = other.config_;
    other.fds_.clear();
  }
  return *this;
}

int Comm::fd_for(int peer) const {
  FG_CHECK(peer >= 0 && peer < world_ && peer != rank_,
           "dist: bad peer " << peer << " (rank " << rank_ << ", world " << world_ << ")");
  return fds_[static_cast<std::size_t>(peer)];
}

void Comm::shutdown_all() noexcept {
  // Unblocks every peer currently waiting on this rank: their reads return
  // EOF immediately instead of running out their timeout.
  for (int fd : fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

void Comm::send_to(int peer, const std::vector<std::uint8_t>& payload) {
  static stats::Counter& bytes_sent = stats::counter("dist.bytes_sent");
  const int fd = fd_for(peer);
  if (FG_FAULT("dist_send")) {
    shutdown_all();
    std::ostringstream os;
    os << "fault injected: dist_send (rank " << rank_ << " -> " << peer << ")";
    throw CommError(os.str());
  }
  try {
    framing::write_frame(fd, payload);
  } catch (const framing::IoError& err) {
    shutdown_all();
    std::ostringstream os;
    os << "dist: send to rank " << peer << " failed: " << err.what();
    if (err.timed_out()) throw CommTimeout(os.str());
    throw CommError(os.str());
  } catch (const flashgen::Error& err) {
    shutdown_all();
    std::ostringstream os;
    os << "dist: send to rank " << peer << " failed: " << err.what();
    throw CommError(os.str());
  }
  bytes_sent.add(payload.size() + 4);
}

void Comm::recv_from(int peer, std::vector<std::uint8_t>& payload) {
  static stats::Counter& bytes_received = stats::counter("dist.bytes_received");
  const int fd = fd_for(peer);
  if (FG_FAULT("dist_recv")) {
    shutdown_all();
    std::ostringstream os;
    os << "fault injected: dist_recv (rank " << rank_ << " <- " << peer << ")";
    throw CommError(os.str());
  }
  bool got = false;
  try {
    FG_TRACE_SPAN("dist.wait", "dist");  // straggler wait: time blocked on a peer
    got = framing::read_frame(fd, payload);
  } catch (const framing::IoError& err) {
    shutdown_all();
    std::ostringstream os;
    os << "dist: recv from rank " << peer << " failed: " << err.what();
    if (err.timed_out()) throw CommTimeout(os.str());
    throw CommError(os.str());
  } catch (const flashgen::Error& err) {
    shutdown_all();
    std::ostringstream os;
    os << "dist: recv from rank " << peer << " failed: " << err.what();
    throw CommError(os.str());
  }
  if (!got) {
    shutdown_all();
    std::ostringstream os;
    os << "dist: peer rank " << peer << " closed the connection";
    throw CommError(os.str());
  }
  bytes_received.add(payload.size() + 4);
}

void Comm::exchange(int peer, const std::vector<std::uint8_t>& out,
                    std::vector<std::uint8_t>& in) {
  if (rank_ < peer) {
    send_to(peer, out);
    recv_from(peer, in);
  } else {
    recv_from(peer, in);
    send_to(peer, out);
  }
}

void Comm::barrier() {
  if (world_ == 1) return;
  FG_TRACE_SPAN("dist.barrier", "dist");
  static stats::Counter& barriers = stats::counter("dist.barriers");
  // Dissemination barrier: in round k, notify rank + 2^k and wait for
  // rank - 2^k. The frames are tiny (kernel-buffered), so the unconditional
  // send-then-receive order cannot deadlock.
  const std::vector<std::uint8_t> token{0xB7};
  std::vector<std::uint8_t> in;
  for (int k = 1; k < world_; k <<= 1) {
    const int up = (rank_ + k) % world_;
    const int down = (rank_ - k + world_) % world_;
    send_to(up, token);
    recv_from(down, in);
  }
  barriers.add();
}

void Comm::broadcast(std::vector<std::uint8_t>& data, int root) {
  FG_CHECK(root >= 0 && root < world_, "dist: broadcast root " << root << " out of range");
  if (world_ == 1) return;
  FG_TRACE_SPAN("dist.broadcast", "dist");
  if (rank_ == root) {
    for (int p = 0; p < world_; ++p) {
      if (p != root) send_to(p, data);
    }
  } else {
    recv_from(root, data);
  }
}

std::vector<std::vector<std::uint8_t>> Comm::all_gather(
    const std::vector<std::uint8_t>& mine) {
  FG_TRACE_SPAN("dist.all_gather", "dist");
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(world_));
  out[static_cast<std::size_t>(rank_)] = mine;
  if (world_ == 1) return out;
  const int next = (rank_ + 1) % world_;
  const int prev = (rank_ - 1 + world_) % world_;
  // Ring: in round i, forward the block that originated at rank - i and
  // receive the block that originated at rank - i - 1. Parity order (even
  // ranks send first) keeps a cycle of blocking sockets impossible.
  for (int i = 0; i < world_ - 1; ++i) {
    const int send_origin = (rank_ - i + world_) % world_;
    const int recv_origin = (rank_ - i - 1 + world_) % world_;
    auto& incoming = out[static_cast<std::size_t>(recv_origin)];
    if (rank_ % 2 == 0) {
      send_to(next, out[static_cast<std::size_t>(send_origin)]);
      recv_from(prev, incoming);
    } else {
      recv_from(prev, incoming);
      send_to(next, out[static_cast<std::size_t>(send_origin)]);
    }
  }
  return out;
}

void Comm::all_reduce_sum(std::vector<float>& data) {
  if (world_ == 1) return;
  FG_TRACE_SPAN("dist.all_reduce", "dist");
  static stats::Counter& allreduces = stats::counter("dist.allreduces");
  const int next = (rank_ + 1) % world_;
  const int prev = (rank_ - 1 + world_) % world_;
  const std::size_t n = data.size();
  auto chunk_span = [&](int c) {
    const auto cc = static_cast<std::size_t>(((c % world_) + world_) % world_);
    const auto w = static_cast<std::size_t>(world_);
    const std::size_t b = n * cc / w;
    return std::pair<std::size_t, std::size_t>(b, n * (cc + 1) / w - b);
  };
  std::vector<std::uint8_t> in;
  // Reduce-scatter: after world-1 rounds, rank r owns the full sum of chunk
  // (r + 1) % world.
  for (int i = 0; i < world_ - 1; ++i) {
    const auto [sb, sc] = chunk_span(rank_ - i);
    const auto [rb, rc] = chunk_span(rank_ - i - 1);
    const auto payload = floats_to_bytes(data.data() + sb, sc);
    if (rank_ % 2 == 0) {
      send_to(next, payload);
      recv_from(prev, in);
    } else {
      recv_from(prev, in);
      send_to(next, payload);
    }
    std::vector<float> tmp(rc);
    bytes_to_floats(in, tmp.data(), rc);
    for (std::size_t j = 0; j < rc; ++j) data[rb + j] += tmp[j];
  }
  // All-gather of the reduced chunks.
  for (int i = 0; i < world_ - 1; ++i) {
    const auto [sb, sc] = chunk_span(rank_ + 1 - i);
    const auto [rb, rc] = chunk_span(rank_ - i);
    const auto payload = floats_to_bytes(data.data() + sb, sc);
    if (rank_ % 2 == 0) {
      send_to(next, payload);
      recv_from(prev, in);
    } else {
      recv_from(prev, in);
      send_to(next, payload);
    }
    bytes_to_floats(in, data.data() + rb, rc);
  }
  allreduces.add();
}

void Comm::all_reduce_tree_sum(std::vector<float>& data) {
  if (world_ == 1) return;
  FG_CHECK((world_ & (world_ - 1)) == 0,
           "dist: tree all-reduce needs a power-of-two world, got " << world_);
  FG_TRACE_SPAN("dist.all_reduce", "dist");
  static stats::Counter& allreduces = stats::counter("dist.allreduces");
  std::vector<std::uint8_t> in;
  std::vector<float> remote(data.size());
  for (int k = 1; k < world_; k <<= 1) {
    const int partner = rank_ ^ k;
    exchange(partner, floats_to_bytes(data.data(), data.size()), in);
    bytes_to_floats(in, remote.data(), remote.size());
    // Elementwise a + b: float addition is commutative, so both partners
    // compute bit-identical sums regardless of which side "sends first".
    for (std::size_t j = 0; j < data.size(); ++j) data[j] += remote[j];
  }
  allreduces.add();
}

std::vector<Comm> make_local_mesh(int world, const CommConfig& config) {
  FG_CHECK(world >= 1, "dist: world must be >= 1");
  std::vector<std::vector<int>> fds(static_cast<std::size_t>(world),
                                    std::vector<int>(static_cast<std::size_t>(world), -1));
  for (int i = 0; i < world; ++i) {
    for (int j = i + 1; j < world; ++j) {
      int pair[2];
      FG_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) == 0,
               "dist: socketpair failed: " << std::strerror(errno));
      fds[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = pair[0];
      fds[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = pair[1];
    }
  }
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) comms.emplace_back(r, world, std::move(fds[r]), config);
  return comms;
}

Comm connect_tcp(int rank, int world, std::uint16_t base_port, const CommConfig& config) {
  FG_CHECK(world >= 1 && rank >= 0 && rank < world,
           "dist: bad rank " << rank << " for world " << world);
  std::vector<int> fds(static_cast<std::size_t>(world), -1);
  if (world == 1) return Comm(rank, world, std::move(fds), config);

  auto make_addr = [&](int r) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(base_port + r));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
  };

  // Listen for the higher ranks that will dial in.
  int listen_fd = -1;
  if (rank < world - 1) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    FG_CHECK(listen_fd >= 0, "dist: socket failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr(rank);
    FG_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
             "dist: bind to port " << base_port + rank << " failed: " << std::strerror(errno));
    FG_CHECK(::listen(listen_fd, world) == 0,
             "dist: listen failed: " << std::strerror(errno));
    // SO_RCVTIMEO on a listening socket bounds accept(), so a rank that
    // never shows up surfaces as a CommTimeout instead of a hang.
    framing::set_socket_timeout(listen_fd, config.timeout_ms);
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config.timeout_ms > 0 ? config.timeout_ms
                                                                        : 30000);
  // Transient connect failures happen whenever workers start out of order:
  // the listener's bind/listen simply has not run yet. Those are retried
  // with bounded exponential backoff (1ms doubling to a 250ms cap) until
  // the rendezvous deadline. Anything else — EADDRNOTAVAIL, EACCES, bad
  // address family, fd exhaustion surfacing as ECONNREFUSED never does —
  // is a configuration error that retrying cannot fix, so it fails fast.
  const auto transient_connect_errno = [](int err) {
    switch (err) {
      case ECONNREFUSED:
      case ECONNRESET:
      case ECONNABORTED:
      case ETIMEDOUT:
      case EINTR:
      case EAGAIN:
      case ENETUNREACH:
      case EHOSTUNREACH:
        return true;
      default:
        return false;
    }
  };
  // Dial every lower rank, retrying until its listener is up.
  for (int p = rank - 1; p >= 0; --p) {
    int fd = -1;
    std::chrono::milliseconds backoff(1);
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      FG_CHECK(fd >= 0, "dist: socket failed: " << std::strerror(errno));
      sockaddr_in addr = make_addr(p);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
      const int err = errno;
      ::close(fd);
      fd = -1;
      if (!transient_connect_errno(err)) {
        if (listen_fd >= 0) ::close(listen_fd);
        for (int f : fds) {
          if (f >= 0) ::close(f);
        }
        std::ostringstream os;
        os << "dist: rendezvous connect to rank " << p << " (port " << base_port + p
           << ") failed: " << std::strerror(err);
        throw CommError(os.str());
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        if (listen_fd >= 0) ::close(listen_fd);
        for (int f : fds) {
          if (f >= 0) ::close(f);
        }
        std::ostringstream os;
        os << "dist: rendezvous with rank " << p << " timed out (port " << base_port + p
           << ", last error: " << std::strerror(err) << ")";
        throw CommTimeout(os.str());
      }
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::milliseconds(250));
    }
    // Identify ourselves so the listener can slot this connection by rank.
    framing::write_frame(fd, {static_cast<std::uint8_t>(rank)});
    fds[static_cast<std::size_t>(p)] = fd;
  }
  // Accept every higher rank and slot it by its handshake frame.
  for (int need = world - 1 - rank; need > 0; --need) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int err = errno;
      ::close(listen_fd);
      for (int f : fds) {
        if (f >= 0) ::close(f);
      }
      std::ostringstream os;
      os << "dist: rendezvous accept timed out with " << need << " ranks missing: "
         << std::strerror(err);
      throw CommTimeout(os.str());
    }
    FG_CHECK(fd >= 0, "dist: accept failed: " << std::strerror(errno));
    std::vector<std::uint8_t> hello;
    FG_CHECK(framing::read_frame(fd, hello) && hello.size() == 1,
             "dist: bad rendezvous handshake");
    const int peer = hello[0];
    FG_CHECK(peer > rank && peer < world && fds[static_cast<std::size_t>(peer)] < 0,
             "dist: duplicate or out-of-range rendezvous rank " << peer);
    fds[static_cast<std::size_t>(peer)] = fd;
  }
  if (listen_fd >= 0) ::close(listen_fd);
  return Comm(rank, world, std::move(fds), config);
}

}  // namespace flashgen::dist
