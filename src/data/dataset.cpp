#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/logging.h"

namespace flashgen::data {

using tensor::Shape;
using tensor::Tensor;

PairedDataset PairedDataset::generate_multi(const DatasetConfig& config,
                                            const std::vector<double>& pe_conditions,
                                            flashgen::Rng& rng) {
  FG_CHECK(!pe_conditions.empty(), "generate_multi needs at least one PE condition");
  std::vector<Condition> conditions;
  conditions.reserve(pe_conditions.size());
  for (double pe : pe_conditions)
    conditions.push_back({.pe_cycles = pe, .retention_hours = config.retention_hours});
  return generate_multi(config, conditions, rng);
}

PairedDataset PairedDataset::generate_multi(const DatasetConfig& config,
                                            std::span<const Condition> conditions,
                                            flashgen::Rng& rng) {
  FG_CHECK(!conditions.empty(), "generate_multi needs at least one condition");
  PairedDataset combined(config, VoltageNormalizer(config.norm));
  for (const Condition& condition : conditions) {
    DatasetConfig condition_config = config;
    condition_config.pe_cycles = condition.pe_cycles;
    condition_config.retention_hours = condition.retention_hours;
    PairedDataset part = generate(condition_config, rng);
    for (std::size_t i = 0; i < part.size(); ++i) {
      combined.program_levels_.push_back(std::move(part.program_levels_[i]));
      combined.voltages_.push_back(std::move(part.voltages_[i]));
      combined.pe_of_array_.push_back(condition.pe_cycles);
      combined.retention_of_array_.push_back(condition.retention_hours);
    }
  }
  return combined;
}

PairedDataset PairedDataset::generate(const DatasetConfig& config, flashgen::Rng& rng) {
  FG_CHECK(config.array_size > 0, "array_size must be positive");
  FG_CHECK(config.num_arrays > 0, "num_arrays must be positive");
  FG_CHECK(config.channel.rows >= config.array_size && config.channel.cols >= config.array_size,
           "block (" << config.channel.rows << "x" << config.channel.cols
                     << ") smaller than crop size " << config.array_size);

  PairedDataset ds(config, VoltageNormalizer(config.norm));
  ds.program_levels_.reserve(config.num_arrays);
  ds.voltages_.reserve(config.num_arrays);

  const flash::FlashChannel channel(config.channel);
  const int crops_per_row = config.channel.rows / config.array_size;
  const int crops_per_col = config.channel.cols / config.array_size;
  const int crops_per_block = crops_per_row * crops_per_col;
  FG_CHECK(crops_per_block > 0, "block yields no crops");

  int produced = 0;
  const float window_lo = static_cast<float>(config.norm.voltage_lo);
  const float window_hi = static_cast<float>(config.norm.voltage_hi);
  while (produced < config.num_arrays) {
    flash::BlockObservation obs =
        channel.run_experiment(config.pe_cycles, rng, config.retention_hours);
    // The characterization recorder senses within a finite voltage window:
    // deep-erased cells below it are clipped at the edge (the "normalization
    // problem" the paper notes for program level 0).
    for (float& v : obs.voltages.raw()) v = std::clamp(v, window_lo, window_hi);
    for (int br = 0; br < crops_per_row && produced < config.num_arrays; ++br) {
      for (int bc = 0; bc < crops_per_col && produced < config.num_arrays; ++bc) {
        ds.program_levels_.push_back(obs.program_levels.crop(
            br * config.array_size, bc * config.array_size, config.array_size,
            config.array_size));
        ds.voltages_.push_back(obs.voltages.crop(br * config.array_size,
                                                 bc * config.array_size, config.array_size,
                                                 config.array_size));
        ds.pe_of_array_.push_back(config.pe_cycles);
        ds.retention_of_array_.push_back(config.retention_hours);
        ++produced;
      }
    }
  }
  FG_LOG(Debug) << "generated dataset: " << ds.size() << " arrays of "
                << config.array_size << "x" << config.array_size << " at PE "
                << config.pe_cycles;
  return ds;
}

std::pair<Tensor, Tensor> PairedDataset::batch(std::span<const std::size_t> indices) const {
  FG_CHECK(!indices.empty(), "empty batch");
  const tensor::Index n = static_cast<tensor::Index>(indices.size());
  const tensor::Index s = config_.array_size;
  Tensor pl = Tensor::zeros(Shape{n, 1, s, s});
  Tensor vl = Tensor::zeros(Shape{n, 1, s, s});
  auto pl_data = pl.data();
  auto vl_data = vl.data();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    FG_CHECK(indices[b] < size(), "batch index " << indices[b] << " out of range");
    const auto& levels = program_levels_[indices[b]];
    const auto& volts = voltages_[indices[b]];
    float* pdst = pl_data.data() + b * s * s;
    float* vdst = vl_data.data() + b * s * s;
    for (int r = 0; r < s; ++r)
      for (int c = 0; c < s; ++c) {
        pdst[r * s + c] = normalizer_.normalize_level(levels(r, c));
        vdst[r * s + c] = normalizer_.normalize_voltage(volts(r, c));
      }
  }
  return {pl, vl};
}

Tensor PairedDataset::batch_pe(std::span<const std::size_t> indices, double pe_scale) const {
  FG_CHECK(!indices.empty(), "empty batch");
  FG_CHECK(pe_scale > 0.0, "pe_scale must be positive");
  Tensor pe = Tensor::zeros(Shape{static_cast<tensor::Index>(indices.size()), 1});
  for (std::size_t b = 0; b < indices.size(); ++b) {
    FG_CHECK(indices[b] < size(), "batch index " << indices[b] << " out of range");
    pe.data()[b] =
        static_cast<float>(std::min(1.0, pe_of_array_[indices[b]] / pe_scale));
  }
  return pe;
}

Tensor PairedDataset::batch_condition(std::span<const std::size_t> indices) const {
  FG_CHECK(!indices.empty(), "empty batch");
  Tensor cond = Tensor::zeros(Shape{static_cast<tensor::Index>(indices.size()), 2});
  auto data = cond.data();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    FG_CHECK(indices[b] < size(), "batch index " << indices[b] << " out of range");
    data[2 * b] = static_cast<float>(pe_of_array_[indices[b]]);
    data[2 * b + 1] = static_cast<float>(retention_of_array_[indices[b]]);
  }
  return cond;
}

Tensor PairedDataset::levels_to_tensor(const flash::Grid<std::uint8_t>& levels) const {
  const tensor::Index s = config_.array_size;
  FG_CHECK(levels.rows() == s && levels.cols() == s,
           "grid " << levels.rows() << "x" << levels.cols() << " does not match array size "
                   << s);
  Tensor pl = Tensor::zeros(Shape{1, 1, s, s});
  auto data = pl.data();
  for (int r = 0; r < s; ++r)
    for (int c = 0; c < s; ++c) data[r * s + c] = normalizer_.normalize_level(levels(r, c));
  return pl;
}

flash::Grid<float> PairedDataset::tensor_to_voltages(const Tensor& t) const {
  const tensor::Index s = config_.array_size;
  FG_CHECK(t.numel() == s * s,
           "tensor with " << t.numel() << " elements is not a " << s << "x" << s << " array");
  flash::Grid<float> grid(static_cast<int>(s), static_cast<int>(s));
  auto data = t.data();
  for (int r = 0; r < s; ++r)
    for (int c = 0; c < s; ++c)
      grid(r, c) = static_cast<float>(normalizer_.denormalize_voltage(data[r * s + c]));
  return grid;
}

BatchSampler::BatchSampler(std::size_t dataset_size, std::size_t batch_size,
                           flashgen::Rng& rng, bool drop_last)
    : dataset_size_(dataset_size), batch_size_(batch_size), rng_(&rng), drop_last_(drop_last) {
  FG_CHECK(batch_size_ > 0, "batch size must be positive");
  FG_CHECK(dataset_size_ > 0, "dataset is empty");
}

std::vector<std::vector<std::size_t>> BatchSampler::epoch() {
  std::vector<std::size_t> order(dataset_size_);
  std::iota(order.begin(), order.end(), 0);
  // Fisher–Yates with our deterministic Rng.
  for (std::size_t i = dataset_size_; i > 1; --i) {
    const std::size_t j = rng_->uniform_int(i);
    std::swap(order[i - 1], order[j]);
  }
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < dataset_size_; start += batch_size_) {
    const std::size_t end = std::min(dataset_size_, start + batch_size_);
    if (drop_last_ && end - start < batch_size_) break;
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

}  // namespace flashgen::data
