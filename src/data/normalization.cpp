#include "data/normalization.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace flashgen::data {

VoltageNormalizer::VoltageNormalizer(const NormalizerConfig& config) : config_(config) {
  FG_CHECK(config_.voltage_hi > config_.voltage_lo,
           "voltage range is empty: [" << config_.voltage_lo << ", " << config_.voltage_hi
                                       << "]");
}

float VoltageNormalizer::normalize_voltage(double voltage) const {
  const double clamped = std::clamp(voltage, config_.voltage_lo, config_.voltage_hi);
  const double unit = (clamped - config_.voltage_lo) / (config_.voltage_hi - config_.voltage_lo);
  return static_cast<float>(2.0 * unit - 1.0);
}

double VoltageNormalizer::denormalize_voltage(float normalized) const {
  const double unit = (static_cast<double>(normalized) + 1.0) / 2.0;
  return config_.voltage_lo + unit * (config_.voltage_hi - config_.voltage_lo);
}

float VoltageNormalizer::normalize_level(int level) const {
  FG_CHECK(level >= 0 && level < flash::kTlcLevels, "level out of range: " << level);
  return static_cast<float>(level) / ((flash::kTlcLevels - 1) / 2.0f) - 1.0f;
}

int VoltageNormalizer::denormalize_level(float normalized) const {
  const float raw = (normalized + 1.0f) * ((flash::kTlcLevels - 1) / 2.0f);
  const int level = static_cast<int>(std::lround(raw));
  return std::clamp(level, 0, flash::kTlcLevels - 1);
}

}  // namespace flashgen::data
