// Paired (program level, voltage) datasets of 2-D crops, and mini-batching.
//
// Mirrors Section III-B of the paper: blocks are characterized at a fixed PE
// cycle count, then cropped into non-overlapping size x size arrays that form
// the training / evaluation sets.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/normalization.h"
#include "flash/channel.h"
#include "tensor/tensor.h"

namespace flashgen::data {

/// One spatio-temporal channel condition: how worn the block is and how long
/// it has retained data since programming. This is the pair the conditional
/// models learn P(VL | PL, condition) over and the threshold optimizer
/// queries at.
struct Condition {
  double pe_cycles = 0.0;
  double retention_hours = 0.0;
};

struct DatasetConfig {
  int array_size = 16;        // crop side length (paper uses 64)
  int num_arrays = 1024;      // number of crops to generate
  double pe_cycles = 4000.0;  // paper's characterization condition
  double retention_hours = 0.0;
  flash::FlashChannelConfig channel;
  NormalizerConfig norm;
};

/// In-memory dataset of paired crops. Raw grids are kept (for evaluation in
/// physical units) alongside the normalizer used for batching. Each array
/// carries the PE condition it was characterized at: single-condition
/// datasets (the paper's Section III setup) use `generate`, spatio-temporal
/// datasets spanning several P/E conditions use `generate_multi`.
class PairedDataset {
 public:
  /// Runs as many simulated block experiments as needed and crops them into
  /// `config.num_arrays` non-overlapping arrays.
  static PairedDataset generate(const DatasetConfig& config, flashgen::Rng& rng);

  /// Generates `config.num_arrays` crops *per condition*, characterized at
  /// each of the given PE cycle counts with the config's retention_hours
  /// (config.pe_cycles is ignored).
  static PairedDataset generate_multi(const DatasetConfig& config,
                                      const std::vector<double>& pe_conditions,
                                      flashgen::Rng& rng);

  /// Generates `config.num_arrays` crops *per condition*, characterized at
  /// each (pe_cycles, retention_hours) pair (config.pe_cycles and
  /// config.retention_hours are ignored).
  static PairedDataset generate_multi(const DatasetConfig& config,
                                      std::span<const Condition> conditions,
                                      flashgen::Rng& rng);

  std::size_t size() const { return program_levels_.size(); }
  int array_size() const { return config_.array_size; }
  const DatasetConfig& config() const { return config_; }
  const VoltageNormalizer& normalizer() const { return normalizer_; }

  const std::vector<flash::Grid<std::uint8_t>>& program_levels() const {
    return program_levels_;
  }
  const std::vector<flash::Grid<float>>& voltages() const { return voltages_; }

  /// PE condition of each array (cycles).
  const std::vector<double>& pe_of_array() const { return pe_of_array_; }

  /// Retention condition of each array (hours since programming).
  const std::vector<double>& retention_of_array() const { return retention_of_array_; }

  /// Builds a normalized NCHW batch (PL, VL), each (|indices|, 1, S, S).
  std::pair<tensor::Tensor, tensor::Tensor> batch(std::span<const std::size_t> indices) const;

  /// PE conditions of a batch, normalized to [0, 1] by `pe_scale` (cycles at
  /// which the conditioning input saturates); shape (|indices|, 1).
  tensor::Tensor batch_pe(std::span<const std::size_t> indices, double pe_scale) const;

  /// Raw (pe_cycles, retention_hours) conditions of a batch, shape
  /// (|indices|, 2) in physical units. Normalization to network inputs is the
  /// model's job (models::normalize_conditions), so the data layer stays
  /// scale-agnostic.
  tensor::Tensor batch_condition(std::span<const std::size_t> indices) const;

  /// Normalizes a single PL grid into a (1, 1, S, S) tensor.
  tensor::Tensor levels_to_tensor(const flash::Grid<std::uint8_t>& levels) const;

  /// Converts a generated (1, 1, S, S) or (S, S)-shaped tensor back to a
  /// voltage grid in physical units.
  flash::Grid<float> tensor_to_voltages(const tensor::Tensor& t) const;

 private:
  PairedDataset(DatasetConfig config, VoltageNormalizer normalizer)
      : config_(std::move(config)), normalizer_(normalizer) {}

  DatasetConfig config_;
  VoltageNormalizer normalizer_;
  std::vector<flash::Grid<std::uint8_t>> program_levels_;
  std::vector<flash::Grid<float>> voltages_;
  std::vector<double> pe_of_array_;
  std::vector<double> retention_of_array_;
};

/// Epoch iteration over shuffled mini-batch index sets.
class BatchSampler {
 public:
  BatchSampler(std::size_t dataset_size, std::size_t batch_size, flashgen::Rng& rng,
               bool drop_last = true);

  /// Index sets for one fresh epoch (reshuffled every call).
  std::vector<std::vector<std::size_t>> epoch();

 private:
  std::size_t dataset_size_;
  std::size_t batch_size_;
  flashgen::Rng* rng_;
  bool drop_last_;
};

}  // namespace flashgen::data
