// Normalization between physical channel units and the [-1, 1] range the
// generative nets operate in (paper Remark 1: single-channel 64x64 arrays,
// tanh output head).
#pragma once

#include "flash/gray_code.h"

namespace flashgen::data {

struct NormalizerConfig {
  // Fixed voltage range covering the TLC window with headroom; values
  // outside are clamped during normalization (the paper likewise
  // "pre-processes" erased-state voltages for normalization problems).
  double voltage_lo = -350.0;
  double voltage_hi = 950.0;
};

class VoltageNormalizer {
 public:
  explicit VoltageNormalizer(const NormalizerConfig& config = {});

  /// Voltage -> [-1, 1], clamped at the configured range.
  float normalize_voltage(double voltage) const;
  /// [-1, 1] -> voltage.
  double denormalize_voltage(float normalized) const;

  /// Program level (0..7) -> [-1, 1].
  float normalize_level(int level) const;
  /// Nearest program level for a normalized input (used in round-trips).
  int denormalize_level(float normalized) const;

  const NormalizerConfig& config() const { return config_; }

 private:
  NormalizerConfig config_;
};

}  // namespace flashgen::data
