#include "core/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/logging.h"
#include "models/bicycle_gan.h"
#include "models/cgan.h"
#include "models/cvae.h"
#include "models/cvae_gan.h"
#include "models/gaussian_model.h"
#include "models/spatio_temporal.h"
#include "pipeline/prefetch.h"

namespace flashgen::core {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::CvaeGan: return "cVAE-GAN";
    case ModelKind::BicycleGan: return "Bicycle-GAN";
    case ModelKind::Cgan: return "cGAN";
    case ModelKind::Cvae: return "cVAE";
    case ModelKind::Gaussian: return "Gaussian";
    case ModelKind::Temporal: return "Temporal";
  }
  FG_CHECK(false, "unknown ModelKind");
  return {};
}

std::unique_ptr<models::GenerativeModel> make_model(ModelKind kind,
                                                    const models::NetworkConfig& config,
                                                    std::uint64_t seed) {
  switch (kind) {
    case ModelKind::CvaeGan: return std::make_unique<models::CvaeGanModel>(config, seed);
    case ModelKind::BicycleGan: return std::make_unique<models::BicycleGanModel>(config, seed);
    case ModelKind::Cgan: return std::make_unique<models::CganModel>(config, seed);
    case ModelKind::Cvae: return std::make_unique<models::CvaeModel>(config, seed);
    case ModelKind::Gaussian: return std::make_unique<models::GaussianModel>();
    case ModelKind::Temporal:
      // The condition scales in `config` bound the (PE, retention) range the
      // normalized conditioning inputs cover; the model forces
      // condition_dims = 2 itself.
      return std::make_unique<models::TemporalCvaeGanModel>(config, config.pe_scale,
                                                            config.retention_scale, seed);
  }
  FG_CHECK(false, "unknown ModelKind");
  return nullptr;
}

ExperimentConfig small_experiment_config() {
  ExperimentConfig config;
  config.dataset.array_size = 16;
  config.dataset.num_arrays = 1536;
  config.dataset.channel.rows = 128;
  config.dataset.channel.cols = 128;
  config.eval_arrays = 160;
  config.network.array_size = 16;
  config.network.base_channels = 16;
  config.network.z_dim = 8;
  // Scaled-training substitution (see DESIGN.md): the paper runs 250k steps
  // of Adam(2e-4) at batch 2; on one CPU core we run ~1k steps, so we use a
  // larger batch and learning rate to land at the same loss level.
  config.epochs = 20;
  config.batch_size = 8;
  config.cgan_batch_size = 32;
  config.lr = 1e-3f;
  // Stronger KL than the paper's 0.01: with ~1k training steps the posterior
  // must stay close to the prior for prior-sampled generation to be in
  // distribution (the paper's 250k steps achieve this with a weaker pull).
  config.beta = 1.0f;
  config.histogram.bins = 325;  // 4-step bins keep small-sample PDFs smooth
  return config;
}

ExperimentConfig small_temporal_experiment_config() {
  ExperimentConfig config = small_experiment_config();
  for (double pe : {1000.0, 4000.0, 8000.0})
    for (double retention : {0.0, 500.0}) config.train_conditions.push_back({pe, retention});
  config.dataset.num_arrays = std::max<int>(
      1, config.dataset.num_arrays / static_cast<int>(config.train_conditions.size()));
  return config;
}

namespace {

// FNV-1a over a canonical description of everything that affects a trained
// checkpoint; used as the cache key.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string config_fingerprint(const ExperimentConfig& config, ModelKind kind,
                               const models::TrainConfig& train) {
  std::ostringstream os;
  const auto& d = config.dataset;
  const auto& ch = d.channel;
  const auto& n = config.network;
  os << to_string(kind) << '|' << d.array_size << ',' << d.num_arrays << ',' << d.pe_cycles
     << ',' << d.retention_hours << ',' << ch.rows << ',' << ch.cols << ','
     << ch.read_noise_stddev << ',' << ch.program_error_rate << ',' << ch.ici.gamma_wl << ','
     << ch.ici.gamma_bl << ',' << ch.ici.noise << ',' << ch.voltage.cell_variability;
  for (const auto& lp : ch.voltage.levels) {
    os << ',' << lp.mean << '/' << lp.stddev << '/' << lp.tail_weight << '/' << lp.tail_scale
       << '/' << lp.deep_weight << '/' << lp.deep_mean << '/' << lp.deep_stddev;
  }
  os << '|' << n.array_size << ','
     << n.base_channels << ',' << n.z_dim << ',' << n.dropout << '|' << train.epochs << ','
     << train.batch_size << ',' << train.lr << ',' << train.alpha << ',' << train.beta << ','
     << train.latent_weight << ',' << train.lsgan << '|' << config.seed;
  // Streamed training draws a different (counter-derived) sample sequence
  // than the materialized train split, so it caches under a distinct key.
  // Worker count and queue depth are deliberately absent: they never change
  // the trained bits.
  if (config.prefetch_workers >= 0) os << "|stream";
  // Multi-condition training draws a different train split (and conditioning
  // inputs), so each schedule caches under its own key.
  for (const auto& cond : config.train_conditions)
    os << "|c" << cond.pe_cycles << '/' << cond.retention_hours;
  if (kind == ModelKind::Temporal)
    os << "|scale" << config.network.pe_scale << '/' << config.network.retention_scale;
  return os.str();
}

}  // namespace

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config), measured_hists_(config.histogram) {
  FG_CHECK(config_.eval_arrays > 0, "eval_arrays must be positive");
  FG_CHECK(config_.z_samples > 0, "z_samples must be positive");
  FG_CHECK(config_.generation_batch > 0, "generation_batch must be positive");
  FG_CHECK(config_.dataset.array_size == config_.network.array_size,
           "dataset crop size " << config_.dataset.array_size
                                << " must match network array size "
                                << config_.network.array_size);

  flashgen::Rng rng(config_.seed);
  flashgen::Rng train_rng = rng.split(1);
  flashgen::Rng eval_rng = rng.split(2);
  FG_LOG(Info) << "characterizing channel: " << config_.dataset.num_arrays << " train + "
               << config_.eval_arrays << " eval arrays of " << config_.dataset.array_size
               << "x" << config_.dataset.array_size << " at PE " << config_.dataset.pe_cycles;
  if (config_.train_conditions.empty()) {
    train_ = data::PairedDataset::generate(config_.dataset, train_rng);
  } else {
    FG_LOG(Info) << "multi-condition train split: " << config_.train_conditions.size()
                 << " (PE, retention) conditions";
    train_ = data::PairedDataset::generate_multi(config_.dataset, config_.train_conditions,
                                                 train_rng);
  }
  data::DatasetConfig eval_config = config_.dataset;
  eval_config.num_arrays = config_.eval_arrays;
  eval_ = data::PairedDataset::generate(eval_config, eval_rng);

  for (std::size_t i = 0; i < eval_->size(); ++i) {
    measured_hists_.add_grids(eval_->program_levels()[i], eval_->voltages()[i]);
  }
  thresholds_ = eval::thresholds_from_histograms(measured_hists_);
  measured_ici_ =
      eval::analyze_ici(eval_->program_levels(), eval_->voltages(), thresholds_[0]);
}

models::TrainConfig Experiment::train_config(ModelKind kind) const {
  models::TrainConfig train;
  train.epochs = config_.epochs;
  train.batch_size = (kind == ModelKind::Cgan) ? config_.cgan_batch_size : config_.batch_size;
  train.lr = config_.lr;
  train.alpha = config_.alpha;
  train.beta = config_.beta;
  train.lsgan = config_.lsgan;
  train.sentinel = config_.sentinel;
  // Snapshot wiring happens in train_or_load: the snapshot path derives from
  // cache_path, whose fingerprint is built from this config.
  return train;
}

std::string Experiment::cache_path(ModelKind kind) const {
  std::string dir = config_.cache_dir;
  if (const char* env = std::getenv("FLASHGEN_CACHE_DIR"); env != nullptr) dir = env;
  if (dir.empty()) return {};
  std::ostringstream os;
  os << dir << "/" << to_string(kind) << "-" << std::hex
     << fnv1a(config_fingerprint(config_, kind, train_config(kind))) << ".ckpt";
  return os.str();
}

std::unique_ptr<models::GenerativeModel> Experiment::train_or_load(ModelKind kind) {
  auto model = make_model(kind, config_.network, config_.seed ^ 0xF1A5Bu);
  flashgen::Rng rng(config_.seed + static_cast<std::uint64_t>(kind) * 7919 + 13);

  if (kind == ModelKind::Gaussian) {
    // Closed-form fit: never worth caching.
    model->fit(*train_, train_config(kind), rng);
    return model;
  }
  const std::string path = cache_path(kind);
  if (!path.empty() && std::filesystem::exists(path)) {
    FG_LOG(Info) << to_string(kind) << ": loading cached checkpoint " << path;
    model->load(path);
    return model;
  }
  models::TrainConfig train = train_config(kind);
  if (config_.snapshot_every > 0 && !path.empty()) {
    std::filesystem::create_directories(std::filesystem::path(path).parent_path());
    train.snapshot.path = path + ".trainstate";
    train.snapshot.every_steps = config_.snapshot_every;
    train.snapshot.resume = config_.resume_training;
  }
  FG_LOG(Info) << to_string(kind) << ": training (" << config_.epochs << " epochs, batch "
               << train.batch_size << ")";
  if (config_.prefetch_workers >= 0) {
    pipeline::StreamConfig stream;
    stream.dataset = config_.dataset;
    // One streamed sample is one simulated block: shrink the block to the
    // crop so producers don't simulate cells the sample never sees.
    stream.dataset.channel.rows = config_.dataset.array_size;
    stream.dataset.channel.cols = config_.dataset.array_size;
    stream.seed = config_.seed;
    stream.conditions = config_.train_conditions;
    pipeline::PrefetchConfig prefetch;
    prefetch.workers = config_.prefetch_workers;
    prefetch.queue_depth = config_.prefetch_queue_depth;
    pipeline::PrefetchSource source(stream, train.batch_size, prefetch);
    model->fit_stream(source, train, rng);
  } else {
    model->fit(*train_, train, rng);
  }
  if (!path.empty()) {
    std::filesystem::create_directories(std::filesystem::path(path).parent_path());
    model->save(path);
    FG_LOG(Info) << to_string(kind) << ": cached checkpoint at " << path;
    // The finished checkpoint supersedes any in-progress snapshot.
    if (!train.snapshot.path.empty()) {
      std::error_code ec;
      std::filesystem::remove(train.snapshot.path, ec);
    }
  }
  return model;
}

ModelEvaluation Experiment::evaluate(models::GenerativeModel& model) {
  ModelEvaluation result(config_.histogram);
  result.name = model.name();
  // Condition-aware models are scored at the eval split's characterization
  // condition (the eval set is always single-condition).
  if (auto* temporal = dynamic_cast<models::TemporalCvaeGanModel*>(&model)) {
    temporal->set_generation_condition(
        {config_.dataset.pe_cycles, config_.dataset.retention_hours});
  }

  flashgen::Rng rng(config_.seed ^ 0xE7A1u);
  const auto& pls = eval_->program_levels();
  std::vector<flash::Grid<std::uint8_t>> gen_pl;
  std::vector<flash::Grid<float>> gen_vl;
  gen_pl.reserve(pls.size() * config_.z_samples);
  gen_vl.reserve(pls.size() * config_.z_samples);

  const int s = config_.dataset.array_size;
  const std::size_t batch = static_cast<std::size_t>(config_.generation_batch);
  for (int draw = 0; draw < config_.z_samples; ++draw) {
    for (std::size_t start = 0; start < pls.size(); start += batch) {
      const std::size_t end = std::min(pls.size(), start + batch);
      std::vector<std::size_t> indices(end - start);
      for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = start + i;
      auto [pl_batch, vl_unused] = eval_->batch(indices);
      (void)vl_unused;
      tensor::Tensor generated = model.generate(pl_batch, rng);
      FG_CHECK(generated.shape() == pl_batch.shape(),
               "model returned shape " << generated.shape() << " for input "
                                       << pl_batch.shape());
      for (std::size_t i = 0; i < indices.size(); ++i) {
        flash::Grid<float> vl_grid(s, s);
        const float* src = generated.data().data() + i * s * s;
        for (int r = 0; r < s; ++r)
          for (int c = 0; c < s; ++c)
            vl_grid(r, c) = static_cast<float>(
                eval_->normalizer().denormalize_voltage(src[r * s + c]));
        result.histograms.add_grids(pls[indices[i]], vl_grid);
        gen_pl.push_back(pls[indices[i]]);
        gen_vl.push_back(std::move(vl_grid));
      }
    }
  }

  for (int level = 0; level < flash::kTlcLevels; ++level) {
    result.tv_per_level[static_cast<std::size_t>(level)] =
        eval::tv_distance(measured_hists_.level(level), result.histograms.level(level));
  }
  result.tv_overall =
      eval::tv_distance(measured_hists_.overall(), result.histograms.overall());
  result.ici = eval::analyze_ici(gen_pl, gen_vl, thresholds_[0]);
  return result;
}

}  // namespace flashgen::core
