#include "core/reporting.h"

#include <cstdio>

#include "common/csv.h"
#include "common/error.h"
#include "common/string_util.h"

namespace flashgen::core {

const std::vector<std::string>& paper_table2_patterns() {
  static const std::vector<std::string> patterns = {"707", "706", "607", "705", "507",
                                                    "606", "704", "407", "605", "506"};
  return patterns;
}

int pattern_from_label(const std::string& label) {
  FG_CHECK(label.size() == 3 && label[1] == '0' && label[0] >= '0' && label[0] <= '7' &&
               label[2] >= '0' && label[2] <= '7',
           "bad ICI pattern label: " << label);
  return eval::pattern_index(label[0] - '0', label[2] - '0');
}

void print_tv_table(const Experiment& experiment,
                    const std::vector<const ModelEvaluation*>& models) {
  (void)experiment;
  std::printf("\nTABLE I: TOTAL VARIATION DISTANCE OF CONDITIONAL AND COMBINED\n");
  std::printf("DISTRIBUTIONS BETWEEN MEASURED AND GENERATED VOLTAGES\n");
  std::printf("%-4s", "PL");
  for (const auto* m : models) std::printf(" %12s", m->name.c_str());
  std::printf("\n");
  for (int level = 0; level < flash::kTlcLevels; ++level) {
    std::printf("%-4d", level);
    for (const auto* m : models)
      std::printf(" %12.4f", m->tv_per_level[static_cast<std::size_t>(level)]);
    std::printf("\n");
  }
  std::printf("%-4s", "All");
  for (const auto* m : models) std::printf(" %12.4f", m->tv_overall);
  std::printf("\n");
}

namespace {

void print_type2_rows(const char* source, const eval::IciAnalysis& ici,
                      const std::vector<int>& patterns) {
  std::printf("%-12s %-9s", source, "Wordline");
  for (int p : patterns) std::printf(" %7.2f%%", 100.0 * ici.wordline.type2(p));
  std::printf("\n%-12s %-9s", "", "Bitline");
  for (int p : patterns) std::printf(" %7.2f%%", 100.0 * ici.bitline.type2(p));
  std::printf("\n");
}

void print_type1_rows(const char* source, const eval::IciAnalysis& ici,
                      const std::vector<int>& top, bool wordline) {
  const eval::IciPatternStats& stats = wordline ? ici.wordline : ici.bitline;
  double covered = 0.0;
  std::printf("%-12s", source);
  for (int p : top) {
    const double share = stats.type1(p);
    covered += share;
    std::printf(" %6.2f%%", 100.0 * share);
  }
  std::printf(" | others %6.2f%%\n", 100.0 * (1.0 - covered));
}

}  // namespace

void print_type2_table(const Experiment& experiment,
                       const std::vector<const ModelEvaluation*>& models,
                       const std::vector<std::string>& pattern_labels) {
  std::vector<int> patterns;
  patterns.reserve(pattern_labels.size());
  for (const auto& label : pattern_labels) patterns.push_back(pattern_from_label(label));

  std::printf("\nTABLE II: TYPE II PATTERN-DEPENDENT ERROR RATES (Vth0 = %.1f)\n",
              experiment.vth0());
  std::printf("%-12s %-9s", "Source", "Dir");
  for (const auto& label : pattern_labels) std::printf(" %8s", label.c_str());
  std::printf("\n");
  print_type2_rows("Measured", experiment.measured_ici(), patterns);
  for (const auto* m : models) print_type2_rows(m->name.c_str(), m->ici, patterns);
}

void print_type1_shares(const Experiment& experiment,
                        const std::vector<const ModelEvaluation*>& models, int top_k) {
  FG_CHECK(top_k > 0 && top_k <= eval::kIciPatterns, "top_k out of range: " << top_k);
  for (const bool wordline : {true, false}) {
    const eval::IciPatternStats& measured_stats =
        wordline ? experiment.measured_ici().wordline : experiment.measured_ici().bitline;
    std::vector<int> top = eval::rank_patterns_by_type1(measured_stats);
    top.resize(static_cast<std::size_t>(top_k));

    std::printf("\nFIG. 5 (%s direction): TYPE I ERROR SHARES, TOP %d MEASURED PATTERNS\n",
                wordline ? "WL" : "BL", top_k);
    std::printf("%-12s", "Pattern");
    for (int p : top) std::printf(" %7s", eval::pattern_label(p).c_str());
    std::printf(" | %s\n", "others");
    print_type1_rows("Measured", experiment.measured_ici(), top, wordline);
    for (const auto* m : models) print_type1_rows(m->name.c_str(), m->ici, top, wordline);
  }
}

void write_pdf_csv(const Experiment& experiment,
                   const std::vector<const ModelEvaluation*>& models,
                   const std::string& csv_path) {
  const auto& measured = experiment.measured_histograms();
  const int bins = measured.overall().bins();

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path);
    std::vector<std::string> header = {"voltage"};
    for (int level = 0; level < flash::kTlcLevels; ++level)
      header.push_back(format("measured_L%d", level));
    header.push_back("measured_all");
    for (const auto* m : models) {
      for (int level = 0; level < flash::kTlcLevels; ++level)
        header.push_back(format("%s_L%d", m->name.c_str(), level));
      header.push_back(format("%s_all", m->name.c_str()));
    }
    csv.row(header);
    std::vector<std::vector<double>> columns;
    columns.push_back({});  // voltage column placeholder
    auto push_source = [&columns](const eval::ConditionalHistograms& h) {
      for (int level = 0; level < flash::kTlcLevels; ++level)
        columns.push_back(h.level(level).pmf());
      columns.push_back(h.overall().pmf());
    };
    push_source(measured);
    for (const auto* m : models) push_source(m->histograms);
    for (int b = 0; b < bins; ++b) {
      std::vector<double> row;
      row.push_back(measured.overall().bin_center(b));
      for (std::size_t c = 1; c < columns.size(); ++c)
        row.push_back(columns[c][static_cast<std::size_t>(b)]);
      csv.numeric_row(row);
    }
    std::printf("wrote PDF series to %s\n", csv_path.c_str());
  }

  // Textual summary: per-level mode voltage and total mass per source.
  auto summarize = [bins](const char* name, const eval::ConditionalHistograms& h) {
    std::printf("%-12s", name);
    for (int level = 0; level < flash::kTlcLevels; ++level) {
      const auto pmf = h.level(level).pmf();
      int mode = 0;
      for (int b = 1; b < bins; ++b)
        if (pmf[static_cast<std::size_t>(b)] > pmf[static_cast<std::size_t>(mode)]) mode = b;
      std::printf(" %8.0f", h.level(level).bin_center(mode));
    }
    std::printf("\n");
  };
  std::printf("\nPER-LEVEL PDF MODES (voltage at conditional-PDF peak)\n%-12s", "Source");
  for (int level = 0; level < flash::kTlcLevels; ++level) std::printf("       L%d", level);
  std::printf("\n");
  summarize("Measured", measured);
  for (const auto* m : models) summarize(m->name.c_str(), m->histograms);

  std::printf("\nThresholds (log-PDF intersections):");
  for (double t : experiment.thresholds()) std::printf(" %.1f", t);
  std::printf("\n");
}

}  // namespace flashgen::core
