// Table / figure rendering for the paper-reproduction benches.
//
// Each function prints the same rows/series the paper reports and can
// optionally dump a CSV for external plotting.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

namespace flashgen::core {

/// The ten most severe ICI patterns of the paper's Table II, in paper order.
const std::vector<std::string>& paper_table2_patterns();

/// Table I: per-level and combined TV distance, one column per model.
void print_tv_table(const Experiment& experiment,
                    const std::vector<const ModelEvaluation*>& models);

/// Table II: Type II error rates (WL and BL rows per source) for the given
/// pattern labels; the "Measured" rows come from the experiment itself.
void print_type2_table(const Experiment& experiment,
                       const std::vector<const ModelEvaluation*>& models,
                       const std::vector<std::string>& pattern_labels);

/// Fig. 5: Type I error shares of the top `top_k` measured patterns (plus
/// "others"), per direction, one column per source.
void print_type1_shares(const Experiment& experiment,
                        const std::vector<const ModelEvaluation*>& models, int top_k = 23);

/// Fig. 1 / Fig. 4: writes per-level conditional PDFs of the measured data
/// and every model to a CSV (columns: voltage, then one column per
/// (source, level) pair), and prints a coarse textual summary (per-level
/// modes and masses).
void write_pdf_csv(const Experiment& experiment,
                   const std::vector<const ModelEvaluation*>& models,
                   const std::string& csv_path);

/// Parses a pattern label like "707" into its pattern index.
int pattern_from_label(const std::string& label);

}  // namespace flashgen::core
