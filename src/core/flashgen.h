// Umbrella header: the flashgen public API.
//
//   #include "core/flashgen.h"
//
//   using namespace flashgen;
//   core::ExperimentConfig cfg = core::small_experiment_config();
//   core::Experiment exp(cfg);
//   auto model = exp.train_or_load(core::ModelKind::CvaeGan);
//   core::ModelEvaluation eval = exp.evaluate(*model);
//
// Layers (bottom-up): common -> tensor -> nn -> flash -> data -> models ->
// eval -> core. Each layer is usable on its own; see README.md.
#pragma once

#include "common/csv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "core/reporting.h"
#include "data/dataset.h"
#include "eval/divergences.h"
#include "eval/histogram.h"
#include "eval/ici_analysis.h"
#include "eval/llr.h"
#include "eval/thresholds.h"
#include "flash/channel.h"
#include "flash/read.h"
#include "models/bicycle_gan.h"
#include "models/cgan.h"
#include "models/cvae.h"
#include "models/cvae_gan.h"
#include "models/gaussian_model.h"
#include "models/spatio_temporal.h"
