// Experiment: the paper's end-to-end workflow.
//
//   1. Characterize the channel (simulated blocks at a PE condition) into
//      train / eval datasets of paired 64x64-style crops.
//   2. Train a generative model on the train split.
//   3. Generate voltages for every eval program-level array with `z_samples`
//      latent draws each (paper: 10).
//   4. Score: conditional-PDF TV distances (Table I) and pattern-dependent
//      ICI Type I / Type II error statistics (Fig. 5, Table II).
//
// Trained network checkpoints are cached on disk keyed by the full config so
// the per-table bench binaries don't retrain the same model repeatedly.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "data/dataset.h"
#include "eval/histogram.h"
#include "eval/ici_analysis.h"
#include "eval/thresholds.h"
#include "flash/read.h"
#include "models/generative_model.h"
#include "models/networks.h"

namespace flashgen::core {

/// The models compared in the paper's evaluation, plus Temporal: the
/// spatio-temporal cVAE-GAN conditioned on (PE cycles, retention hours).
enum class ModelKind { CvaeGan, BicycleGan, Cgan, Cvae, Gaussian, Temporal };

std::string to_string(ModelKind kind);

/// Constructs an untrained model of the given kind.
std::unique_ptr<models::GenerativeModel> make_model(ModelKind kind,
                                                    const models::NetworkConfig& config,
                                                    std::uint64_t seed);

struct ExperimentConfig {
  data::DatasetConfig dataset;      // training-set recipe (also sizes crops)
  int eval_arrays = 128;            // evaluation-set size (paper: 10,000)
  int z_samples = 10;               // latent draws per eval array (paper: 10)
  int generation_batch = 16;        // arrays generated per forward pass
  models::NetworkConfig network;
  int epochs = 3;                   // paper: 5
  int batch_size = 2;               // paper: 2 for the VAE-based models
  int cgan_batch_size = 16;         // paper: 64
  float lr = 2e-4f;                 // paper: 2e-4 (small configs raise this to
                                    // compensate for the reduced step count)
  float alpha = 10.0f;
  float beta = 0.01f;
  bool lsgan = false;
  std::uint64_t seed = 2023;
  eval::HistogramConfig histogram;
  /// Checkpoint cache directory; empty disables caching. Overridden by the
  /// FLASHGEN_CACHE_DIR environment variable when set.
  std::string cache_dir = "flashgen_cache";
  /// Resumable-training snapshot period in optimizer steps; 0 disables.
  /// Snapshots are written next to the cached checkpoint (requires caching)
  /// and deleted once training completes.
  int snapshot_every = 0;
  /// Pick up an interrupted run from its snapshot when one exists.
  bool resume_training = false;
  /// Divergence sentinel applied to every network trainer.
  models::SentinelConfig sentinel;
  /// Streamed training: when >= 0, network models train from a
  /// pipeline::PrefetchSource that simulates sample blocks on demand
  /// (0 = inline on the consumer thread) instead of the materialized train
  /// split. The streamed sequence is a pure function of `seed`; worker count
  /// and queue depth never change the trained bits, so they are excluded
  /// from the checkpoint fingerprint.
  int prefetch_workers = -1;
  /// Bounded-queue capacity (in sample blocks) for streamed training.
  int prefetch_queue_depth = 4;
  /// Spatio-temporal condition schedule. Empty trains at the dataset's single
  /// (pe_cycles, retention_hours) condition. Non-empty, the train split holds
  /// dataset.num_arrays crops per condition (streamed training round-robins
  /// sample g at conditions[g % n]); the eval split and measured statistics
  /// stay at the dataset's single condition. Only condition-aware kinds
  /// (ModelKind::Temporal) use the per-array conditions during fit.
  std::vector<data::Condition> train_conditions;
};

/// Returns a small configuration (16x16 arrays, reduced channel/dataset
/// sizes) that trains all five models in minutes on one CPU core while
/// preserving the paper's qualitative results. Used by benches and examples.
ExperimentConfig small_experiment_config();

/// small_experiment_config() extended with the canonical 3x2 (PE, retention)
/// training grid for ModelKind::Temporal: PE {1000, 4000, 8000} x retention
/// {0, 500} hours. The per-condition array count is scaled down so the total
/// sample count — and so training time — matches the single-condition
/// config. Sharing this one recipe across binaries (serve CLI, threshold
/// CLI, benches, tests) keeps the checkpoint-cache fingerprint identical, so
/// the model trains once.
ExperimentConfig small_temporal_experiment_config();

/// One model's scorecard against the measured channel.
struct ModelEvaluation {
  std::string name;
  std::array<double, flash::kTlcLevels> tv_per_level{};
  double tv_overall = 0.0;
  eval::ConditionalHistograms histograms;  // of the generated voltages
  eval::IciAnalysis ici;                   // of the generated voltages

  explicit ModelEvaluation(const eval::HistogramConfig& config) : histograms(config) {}
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }
  const data::PairedDataset& train_data() const { return *train_; }
  const data::PairedDataset& eval_data() const { return *eval_; }

  /// Conditional histograms of the measured (simulated) eval voltages.
  const eval::ConditionalHistograms& measured_histograms() const { return measured_hists_; }
  /// Thresholds derived from the measured log-PDF intersections.
  const flash::Thresholds& thresholds() const { return thresholds_; }
  /// Level-0/1 threshold used for ICI victim errors.
  double vth0() const { return thresholds_[0]; }
  /// ICI statistics of the measured eval data.
  const eval::IciAnalysis& measured_ici() const { return measured_ici_; }

  /// Trains a model (or loads it from the checkpoint cache) on train_data().
  std::unique_ptr<models::GenerativeModel> train_or_load(ModelKind kind);

  /// Runs generation over the eval set and scores the model.
  ModelEvaluation evaluate(models::GenerativeModel& model);

  /// Training config a given model kind uses under this experiment.
  models::TrainConfig train_config(ModelKind kind) const;

 private:
  std::string cache_path(ModelKind kind) const;

  ExperimentConfig config_;
  std::optional<data::PairedDataset> train_;
  std::optional<data::PairedDataset> eval_;
  eval::ConditionalHistograms measured_hists_;
  flash::Thresholds thresholds_{};
  eval::IciAnalysis measured_ici_;
};

}  // namespace flashgen::core
