// flashgen_thresholds: offline wear-aware read-threshold sweeps.
//
// Trains (or loads from the checkpoint cache) the spatio-temporal cVAE-GAN
// under the small experiment configuration on a (PE, retention) grid, then
// runs the ThresholdOptimizer at every queried condition and tabulates the
// optimized thresholds, estimated per-page BERs, level error rate, and
// mutual information. A second pass over the same grid demonstrates the
// versioned LRU cache (every repeat query is a hit).
//
// Run:  ./flashgen_thresholds [flags]
//   --pe=csv               PE sweep to query (default 1000,4000,8000)
//   --retention=csv        retention-hour sweep to query (default 0,500)
//   --train-pe=csv         training-condition PE grid (default: the
//                          canonical 1000,4000,8000)
//   --train-retention=csv  training-condition retention grid (default: the
//                          canonical 0,500); the train split holds the cross
//                          product of the two grids. With both left at their
//                          defaults the checkpoint is shared with
//                          flashgen_serve's Temporal model and the
//                          thresholds_accuracy bench
//   --waves=N              sampling waves per query (default 8)
//   --batch-rows=N         rows generated per wave (default 8)
//   --seed=N               optimizer sampling seed (default 0x7451)
//   --refine-sweeps=N      coordinate-descent sweeps (default 3)
//   --smoothing=N          histogram smoothing window (default 5)
//
// Reports are pure functions of (checkpoint, condition, optimizer config):
// FLASHGEN_THREADS, repeat runs, and cache state never change the bits.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/flashgen.h"
#include "thresholds/model_sampler.h"
#include "thresholds/optimizer.h"

using namespace flashgen;

namespace {

std::vector<double> parse_csv(const char* text) {
  std::vector<double> out;
  for (const char* p = text; *p != '\0';) {
    char* end = nullptr;
    out.push_back(std::strtod(p, &end));
    if (end == p) {
      std::fprintf(stderr, "bad number in list: %s\n", text);
      std::exit(1);
    }
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "empty list: %s\n", text);
    std::exit(1);
  }
  return out;
}

void print_report(const data::Condition& cond, const thresholds::ThresholdReport& report) {
  std::printf("%7.0f %7.0f |", cond.pe_cycles, cond.retention_hours);
  for (double t : report.thresholds) std::printf(" %7.1f", t);
  std::printf(" | %.2e %.2e %.2e | %.2e | %6.4f | %s\n", report.page_ber[0],
              report.page_ber[1], report.page_ber[2], report.level_error_rate,
              report.mutual_information_bits, report.from_cache ? "cache" : "fresh");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> pe_sweep = {1000.0, 4000.0, 8000.0};
  std::vector<double> retention_sweep = {0.0, 500.0};
  std::vector<double> train_pe;
  std::vector<double> train_retention;
  thresholds::OptimizerConfig opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pe=", 0) == 0) {
      pe_sweep = parse_csv(arg.c_str() + std::strlen("--pe="));
    } else if (arg.rfind("--retention=", 0) == 0) {
      retention_sweep = parse_csv(arg.c_str() + std::strlen("--retention="));
    } else if (arg.rfind("--train-pe=", 0) == 0) {
      train_pe = parse_csv(arg.c_str() + std::strlen("--train-pe="));
    } else if (arg.rfind("--train-retention=", 0) == 0) {
      train_retention = parse_csv(arg.c_str() + std::strlen("--train-retention="));
    } else if (arg.rfind("--waves=", 0) == 0) {
      opt.waves = std::atoi(arg.c_str() + std::strlen("--waves="));
    } else if (arg.rfind("--batch-rows=", 0) == 0) {
      opt.batch_rows = std::atoi(arg.c_str() + std::strlen("--batch-rows="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + std::strlen("--seed=")));
    } else if (arg.rfind("--refine-sweeps=", 0) == 0) {
      opt.refine_sweeps = std::atoi(arg.c_str() + std::strlen("--refine-sweeps="));
    } else if (arg.rfind("--smoothing=", 0) == 0) {
      opt.smoothing_window = std::atoi(arg.c_str() + std::strlen("--smoothing="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  core::ExperimentConfig config = core::small_temporal_experiment_config();
  if (!train_pe.empty() || !train_retention.empty()) {
    // Custom grid: rebuild the schedule, keeping the total sample count (and
    // so training time) at the single-condition configuration's level.
    if (train_pe.empty()) train_pe = {1000.0, 4000.0, 8000.0};
    if (train_retention.empty()) train_retention = {0.0, 500.0};
    config = core::small_experiment_config();
    for (double pe : train_pe)
      for (double ret : train_retention) config.train_conditions.push_back({pe, ret});
    config.dataset.num_arrays = std::max<int>(
        1, config.dataset.num_arrays / static_cast<int>(config.train_conditions.size()));
  }
  core::Experiment experiment(config);
  auto model = experiment.train_or_load(core::ModelKind::Temporal);

  opt.side = config.dataset.array_size;
  opt.histogram = config.histogram;
  opt.norm = config.dataset.norm;
  thresholds::ModelSampler sampler(*model);
  thresholds::ThresholdOptimizer optimizer(sampler, opt);

  std::printf("     PE     ret |      t1      t2      t3      t4      t5      t6      t7 |"
              " BER(lsb)  BER(csb)  BER(msb) | lvl_err  |   MI   | source\n");
  for (int pass = 0; pass < 2; ++pass) {
    for (double pe : pe_sweep) {
      for (double ret : retention_sweep) {
        const data::Condition cond{pe, ret};
        print_report(cond, optimizer.optimize(cond));
      }
    }
    if (pass == 0) std::printf("--- repeat sweep (cache) ---\n");
  }
  std::printf("cache: %llu hits, %llu misses, version %llu\n",
              static_cast<unsigned long long>(optimizer.cache_hits()),
              static_cast<unsigned long long>(optimizer.cache_misses()),
              static_cast<unsigned long long>(optimizer.cache_version()));
  return 0;
}
