// ModelSampler: in-process ChannelSampler over a condition-aware generative
// model — the offline counterpart of the serving fleet's DispatcherSampler.
//
// Each row is generated with its own counter-derived latent stream at the
// requested condition (per-sample batch-norm statistics), so voltages are a
// pure function of (weights, PL row, seed, stream, condition) and reports
// match the fleet bit-for-bit at any batching.
#pragma once

#include "models/generative_model.h"
#include "thresholds/optimizer.h"

namespace flashgen::thresholds {

class ModelSampler : public ChannelSampler {
 public:
  /// `model` must be condition-aware (FG_CHECKs otherwise), outlive the
  /// sampler, and not be used concurrently with it. Calls
  /// model.prepare_generation() once up front.
  explicit ModelSampler(models::GenerativeModel& model);

  std::vector<std::vector<float>> sample(std::span<const RowRequest> rows, std::uint64_t seed,
                                         const data::Condition& condition) override;

 private:
  models::GenerativeModel& model_;
};

}  // namespace flashgen::thresholds
