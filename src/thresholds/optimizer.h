// Wear-aware read-threshold optimization over the generative channel model.
//
// A flash controller reads a page by comparing cell voltages against the
// seven TLC read thresholds; as a block wears (PE cycles) and charge leaks
// (retention), the level distributions drift and the beginning-of-life
// midpoint thresholds start mis-detecting cells. The ThresholdOptimizer
// answers "where should the thresholds sit for THIS (PE, retention) state?"
// by sampling the trained conditional model instead of destructive
// characterization of real silicon:
//
//   1. Draw PL/VL sample batches at the queried condition through a
//      ChannelSampler (in-process model, or the serving fleet) and
//      accumulate per-level eval::ConditionalHistograms.
//   2. Derive candidate thresholds with eval::thresholds_from_histograms
//      (the paper's smoothed-PDF crossing search).
//   3. Refine by coordinate descent on the estimated Gray-coded page BER:
//      thresholds move on the histogram's bin-edge lattice, each sweep
//      re-placing one threshold within +/-refine_radius bins while the
//      others hold, accepting only strict improvements (ties keep the
//      current edge, so the result is deterministic).
//
// The per-level bin counts are a sufficient statistic for every reported
// metric: estimated page BERs, the level error rate, and the mutual
// information of the (programmed level, detected level) channel — so the
// refinement never re-samples the model.
//
// Results are memoized in a versioned LRU cache keyed on the QUANTIZED
// condition (pe_quantum / retention_quantum buckets): repeated queries for
// nearby wear states are O(1) lookups, and invalidate() bumps the version so
// stale entries can never serve a reloaded model.
//
// Everything is deterministic: PL grids and latent draws use counter-derived
// Rng streams indexed by the global row number, so the report is a pure
// function of (model weights, OptimizerConfig, condition) — independent of
// batching, thread count, replica count, or cache state.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "data/normalization.h"
#include "eval/histogram.h"
#include "flash/read.h"

namespace flashgen::thresholds {

/// One row of sampling work: a normalized PL array plus the latent RNG
/// stream that generates its voltages.
struct RowRequest {
  std::vector<float> program_levels;  // normalized, side*side floats
  std::uint64_t stream = 0;
};

/// Source of conditional channel samples for the optimizer. Implementations
/// wrap an in-process model (ModelSampler) or the serving fleet
/// (serve::DispatcherSampler).
class ChannelSampler {
 public:
  virtual ~ChannelSampler() = default;

  /// Generates one voltage row (normalized, same cell layout as the request)
  /// per request, at `condition` (raw physical units). Row i's voltages must
  /// be a pure function of (model weights, rows[i].program_levels, seed,
  /// rows[i].stream, condition) — independent of how rows are batched — so
  /// optimizer reports stay bit-identical across samplers and fleets.
  virtual std::vector<std::vector<float>> sample(std::span<const RowRequest> rows,
                                                 std::uint64_t seed,
                                                 const data::Condition& condition) = 0;
};

struct OptimizerConfig {
  /// Sampled PL arrays are side x side cells (must match the model).
  int side = 16;
  /// Rows per ChannelSampler call.
  int batch_rows = 8;
  /// Total sampled rows = waves * batch_rows.
  int waves = 8;
  /// Base seed for the counter-derived PL and latent streams.
  std::uint64_t seed = 0x7451;
  /// Smoothing window for the initial histogram-crossing candidates.
  int smoothing_window = 5;
  /// Coordinate-descent search radius around each threshold, in bins.
  int refine_radius = 12;
  /// Full coordinate-descent sweeps over the seven thresholds.
  int refine_sweeps = 3;
  /// Cache quantization: conditions within the same (pe_quantum,
  /// retention_quantum) bucket share one cache entry.
  double pe_quantum = 100.0;
  double retention_quantum = 24.0;
  /// LRU capacity in reports; 0 disables caching.
  std::size_t cache_capacity = 64;
  eval::HistogramConfig histogram;
  data::NormalizerConfig norm;
};

/// Optimized thresholds plus the sample-estimated read metrics at one
/// condition. All estimates come from the same accumulated histograms the
/// thresholds were fit on.
struct ThresholdReport {
  flash::Thresholds thresholds{};
  /// Estimated raw bit error rate per Gray-coded page (Lower/Middle/Upper).
  std::array<double, flash::kTlcBitsPerCell> page_ber{};
  /// Fraction of cells detected at the wrong level.
  double level_error_rate = 0.0;
  /// Mutual information (bits/cell) of the programmed-level -> detected-level
  /// channel under the optimized thresholds; upper-bounded by log2(8) = 3.
  double mutual_information_bits = 0.0;
  /// Cells that backed the estimate (waves * batch_rows * side * side).
  std::uint64_t sample_cells = 0;
  /// True when the report came from the LRU cache without re-sampling.
  bool from_cache = false;
};

class ThresholdOptimizer {
 public:
  /// `sampler` must outlive the optimizer.
  explicit ThresholdOptimizer(ChannelSampler& sampler, OptimizerConfig config = {});

  /// Returns the optimized thresholds for `condition`, from the cache when a
  /// quantized match is present (from_cache = true, no sampling), otherwise
  /// computed and inserted. Thread-safe; concurrent queries serialize.
  ThresholdReport optimize(const data::Condition& condition);

  /// Drops every cached report and bumps the cache version, so entries
  /// computed against superseded model weights can never be served again.
  void invalidate();

  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;
  std::uint64_t cache_version() const;

  const OptimizerConfig& config() const { return config_; }

 private:
  struct CacheKey {
    std::uint64_t version = 0;
    long long pe_bucket = 0;
    long long retention_bucket = 0;
    auto operator<=>(const CacheKey&) const = default;
  };

  ThresholdReport compute(const data::Condition& condition);
  CacheKey key_for(const data::Condition& condition) const;

  ChannelSampler& sampler_;
  OptimizerConfig config_;

  mutable std::mutex mutex_;
  // LRU: most-recent at the front; index_ maps keys to list nodes so both
  // lookup and eviction are O(log n) / O(1).
  std::list<std::pair<CacheKey, ThresholdReport>> lru_;
  std::map<CacheKey, std::list<std::pair<CacheKey, ThresholdReport>>::iterator> index_;
  std::uint64_t version_ = 1;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace flashgen::thresholds
