#include "thresholds/model_sampler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/workspace.h"

namespace flashgen::thresholds {

ModelSampler::ModelSampler(models::GenerativeModel& model) : model_(model) {
  FG_CHECK(model_.condition_aware(),
           "ModelSampler: model " << model_.name() << " does not accept conditions");
  model_.prepare_generation();
}

std::vector<std::vector<float>> ModelSampler::sample(std::span<const RowRequest> rows,
                                                     std::uint64_t seed,
                                                     const data::Condition& condition) {
  FG_CHECK(!rows.empty(), "ModelSampler: empty batch");
  const std::size_t cells = rows.front().program_levels.size();
  const auto side = static_cast<tensor::Index>(std::llround(std::sqrt(static_cast<double>(cells))));
  FG_CHECK(static_cast<std::size_t>(side) * static_cast<std::size_t>(side) == cells,
           "ModelSampler: PL row of " << cells << " cells is not square");

  tensor::Tensor pl =
      tensor::Tensor::zeros(tensor::Shape({static_cast<tensor::Index>(rows.size()), 1, side, side}));
  auto pl_data = pl.data();
  std::vector<flashgen::Rng> rngs;
  std::vector<data::Condition> conditions(rows.size(), condition);
  rngs.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    FG_CHECK(rows[i].program_levels.size() == cells,
             "ModelSampler: ragged batch (row " << i << " has " << rows[i].program_levels.size()
                                                << " cells, row 0 has " << cells << ")");
    std::copy(rows[i].program_levels.begin(), rows[i].program_levels.end(),
              pl_data.begin() + static_cast<std::ptrdiff_t>(i * cells));
    rngs.push_back(flashgen::Rng::from_stream(seed, rows[i].stream));
  }

  tensor::InferenceModeGuard inference;
  const tensor::Tensor generated = model_.sample_rows_at(pl, conditions, rngs);
  FG_CHECK(generated.data().size() == rows.size() * cells,
           "ModelSampler: model returned " << generated.data().size() << " floats for "
                                           << rows.size() << " rows of " << cells);
  std::vector<std::vector<float>> out(rows.size());
  const auto generated_data = generated.data();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out[i].assign(generated_data.begin() + static_cast<std::ptrdiff_t>(i * cells),
                  generated_data.begin() + static_cast<std::ptrdiff_t>((i + 1) * cells));
  }
  return out;
}

}  // namespace flashgen::thresholds
