#include "thresholds/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "eval/thresholds.h"
#include "flash/gray_code.h"

namespace flashgen::thresholds {

namespace {

// PL streams live 2^32 above the latent streams, so the grid a row programs
// never shares an Rng stream with the latents that generate its voltages.
constexpr std::uint64_t kPlStreamBase = std::uint64_t{1} << 32;

constexpr int kThresholdCount = flash::kTlcLevels - 1;

// prefix[l][b] = level-l cells in bins [0, b); the sufficient statistic every
// refinement step and report metric is computed from.
using Prefix = std::array<std::vector<double>, flash::kTlcLevels>;
// joint[l][d] = level-l cells whose voltage lands in detected segment d.
using Joint = std::array<std::array<double, flash::kTlcLevels>, flash::kTlcLevels>;

/// Differing Gray-coded page bits between two levels — the per-cell bit-error
/// cost of detecting `programmed` as `detected`.
int bit_distance(int programmed, int detected) {
  const flash::CellBits a = flash::level_to_bits(programmed);
  const flash::CellBits b = flash::level_to_bits(detected);
  int distance = 0;
  for (int p = 0; p < flash::kTlcBitsPerCell; ++p) {
    if (a.bits[static_cast<std::size_t>(p)] != b.bits[static_cast<std::size_t>(p)]) ++distance;
  }
  return distance;
}

Joint joint_of(const Prefix& prefix, const std::array<int, kThresholdCount>& edges, int bins) {
  Joint joint{};
  for (int l = 0; l < flash::kTlcLevels; ++l) {
    const auto& row = prefix[static_cast<std::size_t>(l)];
    int lo = 0;
    for (int d = 0; d < flash::kTlcLevels; ++d) {
      const int hi = d < kThresholdCount ? edges[static_cast<std::size_t>(d)] : bins;
      joint[static_cast<std::size_t>(l)][static_cast<std::size_t>(d)] =
          row[static_cast<std::size_t>(hi)] - row[static_cast<std::size_t>(lo)];
      lo = hi;
    }
  }
  return joint;
}

/// Total Gray-coded page bit errors under `joint` — the coordinate-descent
/// objective (equivalently, the sum of the three page BERs, unnormalized).
double bit_error_cost(const Joint& joint) {
  double cost = 0.0;
  for (int l = 0; l < flash::kTlcLevels; ++l) {
    for (int d = 0; d < flash::kTlcLevels; ++d) {
      if (l == d) continue;
      cost += joint[static_cast<std::size_t>(l)][static_cast<std::size_t>(d)] *
              bit_distance(l, d);
    }
  }
  return cost;
}

}  // namespace

ThresholdOptimizer::ThresholdOptimizer(ChannelSampler& sampler, OptimizerConfig config)
    : sampler_(sampler), config_(config) {
  FG_CHECK(config_.side > 0, "ThresholdOptimizer: side must be positive");
  FG_CHECK(config_.batch_rows > 0, "ThresholdOptimizer: batch_rows must be positive");
  FG_CHECK(config_.waves > 0, "ThresholdOptimizer: waves must be positive");
  FG_CHECK(config_.smoothing_window >= 1, "ThresholdOptimizer: smoothing window must be >= 1");
  FG_CHECK(config_.refine_radius >= 0 && config_.refine_sweeps >= 0,
           "ThresholdOptimizer: refinement knobs must be non-negative");
  FG_CHECK(config_.histogram.bins >= flash::kTlcLevels,
           "ThresholdOptimizer: need at least " << flash::kTlcLevels
                                                << " histogram bins, got "
                                                << config_.histogram.bins);
  FG_CHECK(config_.histogram.hi > config_.histogram.lo,
           "ThresholdOptimizer: bad histogram range");
  FG_CHECK(config_.pe_quantum > 0.0 && config_.retention_quantum > 0.0,
           "ThresholdOptimizer: cache quanta must be positive");
}

ThresholdOptimizer::CacheKey ThresholdOptimizer::key_for(const data::Condition& condition) const {
  CacheKey key;
  key.version = version_;
  key.pe_bucket = std::llround(condition.pe_cycles / config_.pe_quantum);
  key.retention_bucket = std::llround(condition.retention_hours / config_.retention_quantum);
  return key;
}

ThresholdReport ThresholdOptimizer::optimize(const data::Condition& condition) {
  std::unique_lock<std::mutex> lock(mutex_);
  const CacheKey key = key_for(condition);
  if (config_.cache_capacity > 0) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      ThresholdReport report = lru_.front().second;
      report.from_cache = true;
      return report;
    }
  }
  ++misses_;
  // Computed under the lock: sampling dominates, and two concurrent misses
  // for the same bucket would just duplicate it.
  ThresholdReport report = compute(condition);
  if (config_.cache_capacity > 0) {
    lru_.emplace_front(key, report);
    index_[key] = lru_.begin();
    while (lru_.size() > config_.cache_capacity) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }
  return report;
}

void ThresholdOptimizer::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++version_;
  lru_.clear();
  index_.clear();
}

std::uint64_t ThresholdOptimizer::cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ThresholdOptimizer::cache_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ThresholdOptimizer::cache_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

ThresholdReport ThresholdOptimizer::compute(const data::Condition& condition) {
  const data::VoltageNormalizer normalizer(config_.norm);
  eval::ConditionalHistograms hists(config_.histogram);
  const int cells = config_.side * config_.side;

  // Sample wave-by-wave: each global row g carries its own PL stream
  // (kPlStreamBase + g) and latent stream (g), both pure functions of g, so
  // the accumulated histograms do not depend on wave/batch boundaries.
  std::vector<RowRequest> batch(static_cast<std::size_t>(config_.batch_rows));
  std::vector<std::vector<std::uint8_t>> batch_levels(
      static_cast<std::size_t>(config_.batch_rows));
  for (int wave = 0; wave < config_.waves; ++wave) {
    for (int r = 0; r < config_.batch_rows; ++r) {
      const std::uint64_t g = static_cast<std::uint64_t>(wave) *
                                  static_cast<std::uint64_t>(config_.batch_rows) +
                              static_cast<std::uint64_t>(r);
      Rng pl_rng = Rng::from_stream(config_.seed, kPlStreamBase + g);
      auto& levels = batch_levels[static_cast<std::size_t>(r)];
      auto& pl = batch[static_cast<std::size_t>(r)].program_levels;
      levels.resize(static_cast<std::size_t>(cells));
      pl.resize(static_cast<std::size_t>(cells));
      for (int i = 0; i < cells; ++i) {
        const int level = static_cast<int>(pl_rng.uniform_int(flash::kTlcLevels));
        levels[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(level);
        pl[static_cast<std::size_t>(i)] = normalizer.normalize_level(level);
      }
      batch[static_cast<std::size_t>(r)].stream = g;
    }
    const std::vector<std::vector<float>> rows =
        sampler_.sample(batch, config_.seed, condition);
    FG_CHECK(rows.size() == batch.size(),
             "ThresholdOptimizer: sampler returned " << rows.size() << " rows for batch "
                                                     << batch.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      FG_CHECK(rows[r].size() == static_cast<std::size_t>(cells),
               "ThresholdOptimizer: sampler row holds " << rows[r].size() << " cells, want "
                                                        << cells);
      for (int i = 0; i < cells; ++i) {
        hists.add(batch_levels[r][static_cast<std::size_t>(i)],
                  normalizer.denormalize_voltage(rows[r][static_cast<std::size_t>(i)]));
      }
    }
  }

  // Candidate thresholds from the smoothed-PDF crossing search, snapped onto
  // the bin-edge lattice (strictly increasing edge indices in [1, bins-1],
  // with room left above each edge for the thresholds that follow).
  const flash::Thresholds candidates =
      eval::thresholds_from_histograms(hists, config_.smoothing_window);
  const int bins = config_.histogram.bins;
  const double lo = config_.histogram.lo;
  const double width = (config_.histogram.hi - lo) / bins;
  Prefix prefix;
  for (int l = 0; l < flash::kTlcLevels; ++l) {
    auto& row = prefix[static_cast<std::size_t>(l)];
    row.assign(static_cast<std::size_t>(bins) + 1, 0.0);
    const eval::Histogram& hist = hists.level(l);
    for (int b = 0; b < bins; ++b) {
      row[static_cast<std::size_t>(b) + 1] =
          row[static_cast<std::size_t>(b)] + static_cast<double>(hist.count(b));
    }
  }
  std::array<int, kThresholdCount> edges{};
  int previous = 0;
  for (int k = 0; k < kThresholdCount; ++k) {
    int edge = static_cast<int>(std::llround((candidates[static_cast<std::size_t>(k)] - lo) / width));
    edge = std::clamp(edge, previous + 1, bins - 1 - (kThresholdCount - 1 - k));
    edges[static_cast<std::size_t>(k)] = edge;
    previous = edge;
  }

  // Coordinate descent on the estimated page bit errors: re-place one edge at
  // a time within +/-refine_radius bins, strictly between its neighbors.
  // Only strict improvements are taken and candidates scan in ascending bin
  // order, so ties resolve identically on every run.
  double best_cost = bit_error_cost(joint_of(prefix, edges, bins));
  for (int sweep = 0; sweep < config_.refine_sweeps; ++sweep) {
    bool moved = false;
    for (int k = 0; k < kThresholdCount; ++k) {
      const int floor_edge = (k == 0 ? 0 : edges[static_cast<std::size_t>(k) - 1]) + 1;
      const int ceil_edge =
          (k + 1 < kThresholdCount ? edges[static_cast<std::size_t>(k) + 1] : bins) - 1;
      const int lo_edge = std::max(floor_edge, edges[static_cast<std::size_t>(k)] - config_.refine_radius);
      const int hi_edge = std::min(ceil_edge, edges[static_cast<std::size_t>(k)] + config_.refine_radius);
      int best_edge = edges[static_cast<std::size_t>(k)];
      for (int e = lo_edge; e <= hi_edge; ++e) {
        if (e == edges[static_cast<std::size_t>(k)]) continue;
        std::array<int, kThresholdCount> trial = edges;
        trial[static_cast<std::size_t>(k)] = e;
        const double cost = bit_error_cost(joint_of(prefix, trial, bins));
        if (cost < best_cost) {
          best_cost = cost;
          best_edge = e;
        }
      }
      if (best_edge != edges[static_cast<std::size_t>(k)]) {
        edges[static_cast<std::size_t>(k)] = best_edge;
        moved = true;
      }
    }
    if (!moved) break;
  }

  ThresholdReport report;
  for (int k = 0; k < kThresholdCount; ++k) {
    report.thresholds[static_cast<std::size_t>(k)] =
        lo + edges[static_cast<std::size_t>(k)] * width;
  }
  flash::validate_thresholds(report.thresholds);

  const Joint joint = joint_of(prefix, edges, bins);
  double total = 0.0;
  for (int l = 0; l < flash::kTlcLevels; ++l) {
    for (int d = 0; d < flash::kTlcLevels; ++d) {
      total += joint[static_cast<std::size_t>(l)][static_cast<std::size_t>(d)];
    }
  }
  report.sample_cells = static_cast<std::uint64_t>(std::llround(total));
  double level_errors = 0.0;
  std::array<double, flash::kTlcBitsPerCell> page_errors{};
  for (int l = 0; l < flash::kTlcLevels; ++l) {
    const flash::CellBits want = flash::level_to_bits(l);
    for (int d = 0; d < flash::kTlcLevels; ++d) {
      if (l == d) continue;
      const double mass = joint[static_cast<std::size_t>(l)][static_cast<std::size_t>(d)];
      if (mass == 0.0) continue;
      level_errors += mass;
      const flash::CellBits got = flash::level_to_bits(d);
      for (int p = 0; p < flash::kTlcBitsPerCell; ++p) {
        if (want.bits[static_cast<std::size_t>(p)] != got.bits[static_cast<std::size_t>(p)]) {
          page_errors[static_cast<std::size_t>(p)] += mass;
        }
      }
    }
  }
  report.level_error_rate = level_errors / total;
  for (int p = 0; p < flash::kTlcBitsPerCell; ++p) {
    report.page_ber[static_cast<std::size_t>(p)] = page_errors[static_cast<std::size_t>(p)] / total;
  }

  // Mutual information of programmed -> detected level under these
  // thresholds, from the same joint distribution.
  std::array<double, flash::kTlcLevels> programmed{};
  std::array<double, flash::kTlcLevels> detected{};
  for (int l = 0; l < flash::kTlcLevels; ++l) {
    for (int d = 0; d < flash::kTlcLevels; ++d) {
      const double p = joint[static_cast<std::size_t>(l)][static_cast<std::size_t>(d)] / total;
      programmed[static_cast<std::size_t>(l)] += p;
      detected[static_cast<std::size_t>(d)] += p;
    }
  }
  double mi = 0.0;
  for (int l = 0; l < flash::kTlcLevels; ++l) {
    for (int d = 0; d < flash::kTlcLevels; ++d) {
      const double p = joint[static_cast<std::size_t>(l)][static_cast<std::size_t>(d)] / total;
      if (p <= 0.0) continue;
      mi += p * std::log2(p / (programmed[static_cast<std::size_t>(l)] *
                               detected[static_cast<std::size_t>(d)]));
    }
  }
  report.mutual_information_bits = mi;
  return report;
}

}  // namespace flashgen::thresholds
