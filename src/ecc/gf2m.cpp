#include "ecc/gf2m.h"

#include "common/error.h"

namespace flashgen::ecc {

namespace {
// Standard primitive polynomials over GF(2), indexed by m (bit i = coeff x^i).
constexpr std::uint32_t kPrimitive[] = {
    0,      0,      0,
    0b1011,           // m=3:  x^3 + x + 1
    0b10011,          // m=4:  x^4 + x + 1
    0b100101,         // m=5:  x^5 + x^2 + 1
    0b1000011,        // m=6:  x^6 + x + 1
    0b10001001,       // m=7:  x^7 + x^3 + 1
    0b100011101,      // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,     // m=9:  x^9 + x^4 + 1
    0b10000001001,    // m=10: x^10 + x^3 + 1
    0b100000000101,   // m=11: x^11 + x^2 + 1
    0b1000001010011,  // m=12: x^12 + x^6 + x^4 + x + 1
    0b10000000011011, // m=13: x^13 + x^4 + x^3 + x + 1
};
}  // namespace

Gf2m::Gf2m(int m) : m_(m), n_((1 << m) - 1) {
  FG_CHECK(m >= 3 && m <= 13, "GF(2^m) supported for 3 <= m <= 13, got " << m);
  antilog_.resize(static_cast<std::size_t>(n_));
  log_.assign(static_cast<std::size_t>(n_) + 1, -1);
  const std::uint32_t poly = kPrimitive[m];
  std::uint32_t value = 1;
  for (int i = 0; i < n_; ++i) {
    antilog_[static_cast<std::size_t>(i)] = value;
    log_[value] = i;
    value <<= 1;
    if (value & (1u << m)) value ^= poly;
  }
  FG_CHECK(value == 1, "primitive polynomial failed to generate the field");
}

std::uint32_t Gf2m::mul(std::uint32_t a, std::uint32_t b) const {
  if (a == 0 || b == 0) return 0;
  return alpha_pow(log(a) + log(b));
}

std::uint32_t Gf2m::inv(std::uint32_t a) const {
  FG_CHECK(a != 0, "inverse of zero in GF(2^m)");
  return alpha_pow(n_ - log(a));
}

std::uint32_t Gf2m::div(std::uint32_t a, std::uint32_t b) const {
  FG_CHECK(b != 0, "division by zero in GF(2^m)");
  if (a == 0) return 0;
  return alpha_pow(log(a) - log(b));
}

std::uint32_t Gf2m::alpha_pow(long e) const {
  long reduced = e % n_;
  if (reduced < 0) reduced += n_;
  return antilog_[static_cast<std::size_t>(reduced)];
}

int Gf2m::log(std::uint32_t a) const {
  FG_CHECK(a != 0 && a <= static_cast<std::uint32_t>(n_), "log of invalid element " << a);
  return log_[a];
}

}  // namespace flashgen::ecc
