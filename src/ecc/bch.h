// Binary primitive BCH code over GF(2^m): systematic encoding and
// Berlekamp-Massey + Chien-search decoding, correcting up to t bit errors in
// a codeword of length n = 2^m - 1.
//
// This is the ECC substrate for model-based error-rate evaluation: the
// paper's introduction motivates channel models precisely because they let
// ECC frame-error rates be estimated without exhaustive silicon testing
// (cf. Taranalli et al. 2016).
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/gf2m.h"

namespace flashgen::ecc {

/// Bit vectors are LSB-first: bits[i] is the coefficient of x^i.
using Bits = std::vector<std::uint8_t>;

struct DecodeResult {
  bool success = false;     // syndromes cleared after correction
  int corrected = 0;        // number of bit positions flipped
  Bits codeword;            // corrected codeword (n bits)
};

class BchCode {
 public:
  /// Primitive BCH code of length n = 2^m - 1 correcting up to t errors.
  BchCode(int m, int t);

  int n() const { return field_.n(); }
  int k() const { return k_; }
  int t() const { return t_; }
  /// Parity bits per codeword.
  int parity_bits() const { return n() - k(); }
  /// Design code rate k/n.
  double rate() const { return static_cast<double>(k_) / n(); }

  /// Systematic encode: `data` must have exactly k bits. The returned
  /// codeword stores parity in positions [0, n-k) and data in [n-k, n).
  Bits encode(const Bits& data) const;

  /// Extracts the data bits from a (corrected) codeword.
  Bits extract_data(const Bits& codeword) const;

  /// Decodes a received word of n bits. If more than t errors occurred the
  /// decoder either reports failure or (rarely) miscorrects, as with any
  /// bounded-distance decoder.
  DecodeResult decode(const Bits& received) const;

  const Gf2m& field() const { return field_; }
  /// Generator polynomial coefficients, LSB-first (degree n - k).
  const Bits& generator() const { return generator_; }

 private:
  std::vector<std::uint32_t> syndromes(const Bits& received) const;

  Gf2m field_;
  int t_;
  int k_;
  Bits generator_;
};

}  // namespace flashgen::ecc
