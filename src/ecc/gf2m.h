// Galois field GF(2^m) arithmetic via log/antilog tables, 3 <= m <= 13.
// The workhorse under the BCH codec used for ECC evaluation on the flash
// channel (hard errors from the simulator or from generated voltages).
#pragma once

#include <cstdint>
#include <vector>

namespace flashgen::ecc {

class Gf2m {
 public:
  /// Constructs the field with a standard primitive polynomial for `m`.
  explicit Gf2m(int m);

  int m() const { return m_; }
  /// Number of nonzero elements (field order minus one): 2^m - 1.
  int n() const { return n_; }

  /// Addition/subtraction in characteristic 2.
  static std::uint32_t add(std::uint32_t a, std::uint32_t b) { return a ^ b; }

  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
  /// Multiplicative inverse; b must be nonzero.
  std::uint32_t inv(std::uint32_t a) const;
  std::uint32_t div(std::uint32_t a, std::uint32_t b) const;
  /// alpha^e for any integer exponent (reduced mod 2^m - 1).
  std::uint32_t alpha_pow(long e) const;
  /// Discrete log base alpha; a must be nonzero.
  int log(std::uint32_t a) const;

 private:
  int m_;
  int n_;
  std::vector<std::uint32_t> antilog_;  // alpha^i for i in [0, n)
  std::vector<int> log_;                // inverse map; log_[0] unused
};

}  // namespace flashgen::ecc
