#include "ecc/bch.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace flashgen::ecc {

BchCode::BchCode(int m, int t) : field_(m), t_(t) {
  FG_CHECK(t >= 1, "BCH t must be >= 1, got " << t);
  FG_CHECK(2 * t < field_.n(), "BCH t too large for n = " << field_.n());

  // Generator polynomial: product of the distinct minimal polynomials of
  // alpha^1 .. alpha^(2t). Work with coefficients in GF(2^m); the product of
  // each full conjugacy coset has binary coefficients.
  std::set<int> covered;
  std::vector<std::uint32_t> gen = {1};  // polynomial over GF(2^m), LSB-first
  for (int j = 1; j <= 2 * t; ++j) {
    if (covered.count(j)) continue;
    // Conjugacy coset of j: { j * 2^i mod n }.
    std::vector<int> coset;
    int e = j;
    do {
      coset.push_back(e);
      covered.insert(e);
      e = (2 * e) % field_.n();
    } while (e != j);
    // Minimal polynomial: prod (x + alpha^e) over the coset.
    for (int exponent : coset) {
      const std::uint32_t root = field_.alpha_pow(exponent);
      std::vector<std::uint32_t> next(gen.size() + 1, 0);
      for (std::size_t i = 0; i < gen.size(); ++i) {
        next[i + 1] = Gf2m::add(next[i + 1], gen[i]);          // x * gen
        next[i] = Gf2m::add(next[i], field_.mul(root, gen[i])); // root * gen
      }
      gen = std::move(next);
    }
  }
  generator_.resize(gen.size());
  for (std::size_t i = 0; i < gen.size(); ++i) {
    FG_CHECK(gen[i] <= 1, "generator polynomial coefficient not binary");
    generator_[i] = static_cast<std::uint8_t>(gen[i]);
  }
  k_ = n() - static_cast<int>(generator_.size()) + 1;
  FG_CHECK(k_ > 0, "BCH(m=" << m << ", t=" << t << ") has no data bits");
}

Bits BchCode::encode(const Bits& data) const {
  FG_CHECK(static_cast<int>(data.size()) == k_,
           "encode expects " << k_ << " data bits, got " << data.size());
  const int parity = parity_bits();
  // Systematic: remainder of x^parity * d(x) divided by g(x).
  Bits remainder(static_cast<std::size_t>(parity), 0);
  for (int i = k_ - 1; i >= 0; --i) {
    const std::uint8_t feedback =
        data[static_cast<std::size_t>(i)] ^ remainder[static_cast<std::size_t>(parity - 1)];
    for (int j = parity - 1; j > 0; --j) {
      remainder[static_cast<std::size_t>(j)] =
          remainder[static_cast<std::size_t>(j - 1)] ^
          (feedback & generator_[static_cast<std::size_t>(j)]);
    }
    remainder[0] = feedback & generator_[0];
  }
  Bits codeword(static_cast<std::size_t>(n()), 0);
  for (int i = 0; i < parity; ++i) codeword[static_cast<std::size_t>(i)] = remainder[i];
  for (int i = 0; i < k_; ++i)
    codeword[static_cast<std::size_t>(parity + i)] = data[static_cast<std::size_t>(i)];
  return codeword;
}

Bits BchCode::extract_data(const Bits& codeword) const {
  FG_CHECK(static_cast<int>(codeword.size()) == n(), "codeword must have n bits");
  return Bits(codeword.begin() + parity_bits(), codeword.end());
}

std::vector<std::uint32_t> BchCode::syndromes(const Bits& received) const {
  std::vector<std::uint32_t> s(static_cast<std::size_t>(2 * t_), 0);
  for (int j = 1; j <= 2 * t_; ++j) {
    std::uint32_t acc = 0;
    for (int i = 0; i < n(); ++i) {
      if (received[static_cast<std::size_t>(i)])
        acc = Gf2m::add(acc, field_.alpha_pow(static_cast<long>(j) * i));
    }
    s[static_cast<std::size_t>(j - 1)] = acc;
  }
  return s;
}

DecodeResult BchCode::decode(const Bits& received) const {
  FG_CHECK(static_cast<int>(received.size()) == n(),
           "decode expects " << n() << " bits, got " << received.size());
  DecodeResult result;
  result.codeword = received;

  const auto s = syndromes(received);
  if (std::all_of(s.begin(), s.end(), [](std::uint32_t v) { return v == 0; })) {
    result.success = true;
    return result;
  }

  // Berlekamp–Massey: error-locator polynomial Lambda.
  std::vector<std::uint32_t> lambda = {1};
  std::vector<std::uint32_t> prev = {1};
  int l = 0;
  int shift = 1;
  std::uint32_t prev_discrepancy = 1;
  for (int r = 0; r < 2 * t_; ++r) {
    std::uint32_t delta = s[static_cast<std::size_t>(r)];
    for (int i = 1; i <= l && i < static_cast<int>(lambda.size()); ++i) {
      if (r - i >= 0) {
        delta = Gf2m::add(delta, field_.mul(lambda[static_cast<std::size_t>(i)],
                                            s[static_cast<std::size_t>(r - i)]));
      }
    }
    if (delta == 0) {
      ++shift;
      continue;
    }
    const std::uint32_t scale = field_.div(delta, prev_discrepancy);
    std::vector<std::uint32_t> updated = lambda;
    if (updated.size() < prev.size() + static_cast<std::size_t>(shift)) {
      updated.resize(prev.size() + static_cast<std::size_t>(shift), 0);
    }
    for (std::size_t i = 0; i < prev.size(); ++i) {
      updated[i + static_cast<std::size_t>(shift)] = Gf2m::add(
          updated[i + static_cast<std::size_t>(shift)], field_.mul(scale, prev[i]));
    }
    if (2 * l <= r) {
      prev = lambda;
      prev_discrepancy = delta;
      l = r + 1 - l;
      shift = 1;
    } else {
      ++shift;
    }
    lambda = std::move(updated);
  }
  while (!lambda.empty() && lambda.back() == 0) lambda.pop_back();
  const int degree = static_cast<int>(lambda.size()) - 1;
  if (degree <= 0 || degree > t_) return result;  // uncorrectable

  // Chien search: error at position i iff Lambda(alpha^{-i}) == 0.
  std::vector<int> error_positions;
  for (int i = 0; i < n(); ++i) {
    std::uint32_t acc = 0;
    for (int d = 0; d < static_cast<int>(lambda.size()); ++d) {
      if (lambda[static_cast<std::size_t>(d)] == 0) continue;
      acc = Gf2m::add(acc, field_.mul(lambda[static_cast<std::size_t>(d)],
                                      field_.alpha_pow(-static_cast<long>(d) * i)));
    }
    if (acc == 0) error_positions.push_back(i);
  }
  if (static_cast<int>(error_positions.size()) != degree) return result;  // failure

  for (int pos : error_positions) result.codeword[static_cast<std::size_t>(pos)] ^= 1;
  result.corrected = static_cast<int>(error_positions.size());

  const auto check = syndromes(result.codeword);
  result.success =
      std::all_of(check.begin(), check.end(), [](std::uint32_t v) { return v == 0; });
  if (!result.success) {
    result.codeword = received;  // roll back a failed correction attempt
    result.corrected = 0;
  }
  return result;
}

}  // namespace flashgen::ecc
