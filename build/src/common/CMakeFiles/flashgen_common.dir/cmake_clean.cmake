file(REMOVE_RECURSE
  "CMakeFiles/flashgen_common.dir/csv.cpp.o"
  "CMakeFiles/flashgen_common.dir/csv.cpp.o.d"
  "CMakeFiles/flashgen_common.dir/logging.cpp.o"
  "CMakeFiles/flashgen_common.dir/logging.cpp.o.d"
  "CMakeFiles/flashgen_common.dir/parallel.cpp.o"
  "CMakeFiles/flashgen_common.dir/parallel.cpp.o.d"
  "CMakeFiles/flashgen_common.dir/rng.cpp.o"
  "CMakeFiles/flashgen_common.dir/rng.cpp.o.d"
  "CMakeFiles/flashgen_common.dir/string_util.cpp.o"
  "CMakeFiles/flashgen_common.dir/string_util.cpp.o.d"
  "libflashgen_common.a"
  "libflashgen_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
