file(REMOVE_RECURSE
  "libflashgen_common.a"
)
