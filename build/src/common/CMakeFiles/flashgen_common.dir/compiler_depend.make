# Empty compiler generated dependencies file for flashgen_common.
# This may be replaced when dependencies are built.
