# Empty dependencies file for flashgen_common.
# This may be replaced when dependencies are built.
