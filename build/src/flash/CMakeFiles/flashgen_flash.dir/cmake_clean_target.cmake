file(REMOVE_RECURSE
  "libflashgen_flash.a"
)
