# Empty dependencies file for flashgen_flash.
# This may be replaced when dependencies are built.
