file(REMOVE_RECURSE
  "CMakeFiles/flashgen_flash.dir/channel.cpp.o"
  "CMakeFiles/flashgen_flash.dir/channel.cpp.o.d"
  "CMakeFiles/flashgen_flash.dir/gray_code.cpp.o"
  "CMakeFiles/flashgen_flash.dir/gray_code.cpp.o.d"
  "CMakeFiles/flashgen_flash.dir/ici.cpp.o"
  "CMakeFiles/flashgen_flash.dir/ici.cpp.o.d"
  "CMakeFiles/flashgen_flash.dir/read.cpp.o"
  "CMakeFiles/flashgen_flash.dir/read.cpp.o.d"
  "CMakeFiles/flashgen_flash.dir/voltage_model.cpp.o"
  "CMakeFiles/flashgen_flash.dir/voltage_model.cpp.o.d"
  "libflashgen_flash.a"
  "libflashgen_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
