
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/channel.cpp" "src/flash/CMakeFiles/flashgen_flash.dir/channel.cpp.o" "gcc" "src/flash/CMakeFiles/flashgen_flash.dir/channel.cpp.o.d"
  "/root/repo/src/flash/gray_code.cpp" "src/flash/CMakeFiles/flashgen_flash.dir/gray_code.cpp.o" "gcc" "src/flash/CMakeFiles/flashgen_flash.dir/gray_code.cpp.o.d"
  "/root/repo/src/flash/ici.cpp" "src/flash/CMakeFiles/flashgen_flash.dir/ici.cpp.o" "gcc" "src/flash/CMakeFiles/flashgen_flash.dir/ici.cpp.o.d"
  "/root/repo/src/flash/read.cpp" "src/flash/CMakeFiles/flashgen_flash.dir/read.cpp.o" "gcc" "src/flash/CMakeFiles/flashgen_flash.dir/read.cpp.o.d"
  "/root/repo/src/flash/voltage_model.cpp" "src/flash/CMakeFiles/flashgen_flash.dir/voltage_model.cpp.o" "gcc" "src/flash/CMakeFiles/flashgen_flash.dir/voltage_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flashgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
