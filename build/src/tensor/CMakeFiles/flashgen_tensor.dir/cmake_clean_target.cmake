file(REMOVE_RECURSE
  "libflashgen_tensor.a"
)
