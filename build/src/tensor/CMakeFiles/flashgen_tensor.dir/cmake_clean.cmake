file(REMOVE_RECURSE
  "CMakeFiles/flashgen_tensor.dir/conv.cpp.o"
  "CMakeFiles/flashgen_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/flashgen_tensor.dir/gemm.cpp.o"
  "CMakeFiles/flashgen_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/flashgen_tensor.dir/ops.cpp.o"
  "CMakeFiles/flashgen_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/flashgen_tensor.dir/shape.cpp.o"
  "CMakeFiles/flashgen_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/flashgen_tensor.dir/tensor.cpp.o"
  "CMakeFiles/flashgen_tensor.dir/tensor.cpp.o.d"
  "libflashgen_tensor.a"
  "libflashgen_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
