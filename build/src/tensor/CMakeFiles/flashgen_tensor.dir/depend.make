# Empty dependencies file for flashgen_tensor.
# This may be replaced when dependencies are built.
