# Empty compiler generated dependencies file for flashgen_core.
# This may be replaced when dependencies are built.
