file(REMOVE_RECURSE
  "libflashgen_core.a"
)
