file(REMOVE_RECURSE
  "CMakeFiles/flashgen_core.dir/experiment.cpp.o"
  "CMakeFiles/flashgen_core.dir/experiment.cpp.o.d"
  "CMakeFiles/flashgen_core.dir/reporting.cpp.o"
  "CMakeFiles/flashgen_core.dir/reporting.cpp.o.d"
  "libflashgen_core.a"
  "libflashgen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
