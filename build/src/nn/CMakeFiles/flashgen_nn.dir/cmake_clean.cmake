file(REMOVE_RECURSE
  "CMakeFiles/flashgen_nn.dir/layers.cpp.o"
  "CMakeFiles/flashgen_nn.dir/layers.cpp.o.d"
  "CMakeFiles/flashgen_nn.dir/module.cpp.o"
  "CMakeFiles/flashgen_nn.dir/module.cpp.o.d"
  "CMakeFiles/flashgen_nn.dir/optimizer.cpp.o"
  "CMakeFiles/flashgen_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/flashgen_nn.dir/serialize.cpp.o"
  "CMakeFiles/flashgen_nn.dir/serialize.cpp.o.d"
  "libflashgen_nn.a"
  "libflashgen_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
