# Empty dependencies file for flashgen_nn.
# This may be replaced when dependencies are built.
