file(REMOVE_RECURSE
  "libflashgen_nn.a"
)
