# Empty compiler generated dependencies file for flashgen_models.
# This may be replaced when dependencies are built.
