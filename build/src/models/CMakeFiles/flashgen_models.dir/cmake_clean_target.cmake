file(REMOVE_RECURSE
  "libflashgen_models.a"
)
