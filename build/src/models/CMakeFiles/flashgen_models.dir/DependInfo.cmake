
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bicycle_gan.cpp" "src/models/CMakeFiles/flashgen_models.dir/bicycle_gan.cpp.o" "gcc" "src/models/CMakeFiles/flashgen_models.dir/bicycle_gan.cpp.o.d"
  "/root/repo/src/models/cgan.cpp" "src/models/CMakeFiles/flashgen_models.dir/cgan.cpp.o" "gcc" "src/models/CMakeFiles/flashgen_models.dir/cgan.cpp.o.d"
  "/root/repo/src/models/cvae.cpp" "src/models/CMakeFiles/flashgen_models.dir/cvae.cpp.o" "gcc" "src/models/CMakeFiles/flashgen_models.dir/cvae.cpp.o.d"
  "/root/repo/src/models/cvae_gan.cpp" "src/models/CMakeFiles/flashgen_models.dir/cvae_gan.cpp.o" "gcc" "src/models/CMakeFiles/flashgen_models.dir/cvae_gan.cpp.o.d"
  "/root/repo/src/models/gaussian_model.cpp" "src/models/CMakeFiles/flashgen_models.dir/gaussian_model.cpp.o" "gcc" "src/models/CMakeFiles/flashgen_models.dir/gaussian_model.cpp.o.d"
  "/root/repo/src/models/generative_model.cpp" "src/models/CMakeFiles/flashgen_models.dir/generative_model.cpp.o" "gcc" "src/models/CMakeFiles/flashgen_models.dir/generative_model.cpp.o.d"
  "/root/repo/src/models/networks.cpp" "src/models/CMakeFiles/flashgen_models.dir/networks.cpp.o" "gcc" "src/models/CMakeFiles/flashgen_models.dir/networks.cpp.o.d"
  "/root/repo/src/models/spatio_temporal.cpp" "src/models/CMakeFiles/flashgen_models.dir/spatio_temporal.cpp.o" "gcc" "src/models/CMakeFiles/flashgen_models.dir/spatio_temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/flashgen_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/flashgen_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flashgen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/flashgen_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flashgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
