file(REMOVE_RECURSE
  "CMakeFiles/flashgen_models.dir/bicycle_gan.cpp.o"
  "CMakeFiles/flashgen_models.dir/bicycle_gan.cpp.o.d"
  "CMakeFiles/flashgen_models.dir/cgan.cpp.o"
  "CMakeFiles/flashgen_models.dir/cgan.cpp.o.d"
  "CMakeFiles/flashgen_models.dir/cvae.cpp.o"
  "CMakeFiles/flashgen_models.dir/cvae.cpp.o.d"
  "CMakeFiles/flashgen_models.dir/cvae_gan.cpp.o"
  "CMakeFiles/flashgen_models.dir/cvae_gan.cpp.o.d"
  "CMakeFiles/flashgen_models.dir/gaussian_model.cpp.o"
  "CMakeFiles/flashgen_models.dir/gaussian_model.cpp.o.d"
  "CMakeFiles/flashgen_models.dir/generative_model.cpp.o"
  "CMakeFiles/flashgen_models.dir/generative_model.cpp.o.d"
  "CMakeFiles/flashgen_models.dir/networks.cpp.o"
  "CMakeFiles/flashgen_models.dir/networks.cpp.o.d"
  "CMakeFiles/flashgen_models.dir/spatio_temporal.cpp.o"
  "CMakeFiles/flashgen_models.dir/spatio_temporal.cpp.o.d"
  "libflashgen_models.a"
  "libflashgen_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
