file(REMOVE_RECURSE
  "libflashgen_eval.a"
)
