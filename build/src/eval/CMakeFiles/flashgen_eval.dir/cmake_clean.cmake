file(REMOVE_RECURSE
  "CMakeFiles/flashgen_eval.dir/divergences.cpp.o"
  "CMakeFiles/flashgen_eval.dir/divergences.cpp.o.d"
  "CMakeFiles/flashgen_eval.dir/histogram.cpp.o"
  "CMakeFiles/flashgen_eval.dir/histogram.cpp.o.d"
  "CMakeFiles/flashgen_eval.dir/ici_analysis.cpp.o"
  "CMakeFiles/flashgen_eval.dir/ici_analysis.cpp.o.d"
  "CMakeFiles/flashgen_eval.dir/llr.cpp.o"
  "CMakeFiles/flashgen_eval.dir/llr.cpp.o.d"
  "CMakeFiles/flashgen_eval.dir/thresholds.cpp.o"
  "CMakeFiles/flashgen_eval.dir/thresholds.cpp.o.d"
  "libflashgen_eval.a"
  "libflashgen_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
