
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/divergences.cpp" "src/eval/CMakeFiles/flashgen_eval.dir/divergences.cpp.o" "gcc" "src/eval/CMakeFiles/flashgen_eval.dir/divergences.cpp.o.d"
  "/root/repo/src/eval/histogram.cpp" "src/eval/CMakeFiles/flashgen_eval.dir/histogram.cpp.o" "gcc" "src/eval/CMakeFiles/flashgen_eval.dir/histogram.cpp.o.d"
  "/root/repo/src/eval/ici_analysis.cpp" "src/eval/CMakeFiles/flashgen_eval.dir/ici_analysis.cpp.o" "gcc" "src/eval/CMakeFiles/flashgen_eval.dir/ici_analysis.cpp.o.d"
  "/root/repo/src/eval/llr.cpp" "src/eval/CMakeFiles/flashgen_eval.dir/llr.cpp.o" "gcc" "src/eval/CMakeFiles/flashgen_eval.dir/llr.cpp.o.d"
  "/root/repo/src/eval/thresholds.cpp" "src/eval/CMakeFiles/flashgen_eval.dir/thresholds.cpp.o" "gcc" "src/eval/CMakeFiles/flashgen_eval.dir/thresholds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/flashgen_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flashgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
