# Empty compiler generated dependencies file for flashgen_eval.
# This may be replaced when dependencies are built.
