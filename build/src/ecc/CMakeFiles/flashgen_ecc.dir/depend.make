# Empty dependencies file for flashgen_ecc.
# This may be replaced when dependencies are built.
