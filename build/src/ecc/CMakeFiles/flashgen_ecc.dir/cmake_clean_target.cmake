file(REMOVE_RECURSE
  "libflashgen_ecc.a"
)
