file(REMOVE_RECURSE
  "CMakeFiles/flashgen_ecc.dir/bch.cpp.o"
  "CMakeFiles/flashgen_ecc.dir/bch.cpp.o.d"
  "CMakeFiles/flashgen_ecc.dir/gf2m.cpp.o"
  "CMakeFiles/flashgen_ecc.dir/gf2m.cpp.o.d"
  "libflashgen_ecc.a"
  "libflashgen_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
