file(REMOVE_RECURSE
  "CMakeFiles/flashgen_data.dir/dataset.cpp.o"
  "CMakeFiles/flashgen_data.dir/dataset.cpp.o.d"
  "CMakeFiles/flashgen_data.dir/normalization.cpp.o"
  "CMakeFiles/flashgen_data.dir/normalization.cpp.o.d"
  "libflashgen_data.a"
  "libflashgen_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashgen_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
