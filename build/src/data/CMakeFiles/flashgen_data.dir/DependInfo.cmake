
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/flashgen_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/flashgen_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/normalization.cpp" "src/data/CMakeFiles/flashgen_data.dir/normalization.cpp.o" "gcc" "src/data/CMakeFiles/flashgen_data.dir/normalization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/flashgen_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flashgen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flashgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
