# Empty compiler generated dependencies file for flashgen_data.
# This may be replaced when dependencies are built.
