file(REMOVE_RECURSE
  "libflashgen_data.a"
)
