# Empty dependencies file for ablation_ici_strength.
# This may be replaced when dependencies are built.
