file(REMOVE_RECURSE
  "CMakeFiles/ablation_ici_strength.dir/ablation_ici_strength.cpp.o"
  "CMakeFiles/ablation_ici_strength.dir/ablation_ici_strength.cpp.o.d"
  "ablation_ici_strength"
  "ablation_ici_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ici_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
