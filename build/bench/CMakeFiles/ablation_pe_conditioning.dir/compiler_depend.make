# Empty compiler generated dependencies file for ablation_pe_conditioning.
# This may be replaced when dependencies are built.
