file(REMOVE_RECURSE
  "CMakeFiles/ablation_pe_conditioning.dir/ablation_pe_conditioning.cpp.o"
  "CMakeFiles/ablation_pe_conditioning.dir/ablation_pe_conditioning.cpp.o.d"
  "ablation_pe_conditioning"
  "ablation_pe_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pe_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
