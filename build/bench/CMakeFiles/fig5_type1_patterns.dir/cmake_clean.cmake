file(REMOVE_RECURSE
  "CMakeFiles/fig5_type1_patterns.dir/fig5_type1_patterns.cpp.o"
  "CMakeFiles/fig5_type1_patterns.dir/fig5_type1_patterns.cpp.o.d"
  "fig5_type1_patterns"
  "fig5_type1_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_type1_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
