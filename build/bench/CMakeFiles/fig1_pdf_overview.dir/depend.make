# Empty dependencies file for fig1_pdf_overview.
# This may be replaced when dependencies are built.
