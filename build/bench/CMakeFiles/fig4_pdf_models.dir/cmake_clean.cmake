file(REMOVE_RECURSE
  "CMakeFiles/fig4_pdf_models.dir/fig4_pdf_models.cpp.o"
  "CMakeFiles/fig4_pdf_models.dir/fig4_pdf_models.cpp.o.d"
  "fig4_pdf_models"
  "fig4_pdf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pdf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
