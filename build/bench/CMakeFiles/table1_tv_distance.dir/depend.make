# Empty dependencies file for table1_tv_distance.
# This may be replaced when dependencies are built.
