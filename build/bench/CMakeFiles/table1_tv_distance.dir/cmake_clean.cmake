file(REMOVE_RECURSE
  "CMakeFiles/table1_tv_distance.dir/table1_tv_distance.cpp.o"
  "CMakeFiles/table1_tv_distance.dir/table1_tv_distance.cpp.o.d"
  "table1_tv_distance"
  "table1_tv_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tv_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
