# Empty compiler generated dependencies file for micro_flash.
# This may be replaced when dependencies are built.
