file(REMOVE_RECURSE
  "CMakeFiles/micro_flash.dir/micro_flash.cpp.o"
  "CMakeFiles/micro_flash.dir/micro_flash.cpp.o.d"
  "micro_flash"
  "micro_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
