# Empty compiler generated dependencies file for ext_temporal_model.
# This may be replaced when dependencies are built.
