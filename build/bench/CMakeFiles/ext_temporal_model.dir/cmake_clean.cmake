file(REMOVE_RECURSE
  "CMakeFiles/ext_temporal_model.dir/ext_temporal_model.cpp.o"
  "CMakeFiles/ext_temporal_model.dir/ext_temporal_model.cpp.o.d"
  "ext_temporal_model"
  "ext_temporal_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_temporal_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
