file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/common/csv_test.cpp.o"
  "CMakeFiles/common_test.dir/common/csv_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/parallel_test.cpp.o"
  "CMakeFiles/common_test.dir/common/parallel_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/rng_test.cpp.o"
  "CMakeFiles/common_test.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/common_test.dir/common/string_util_test.cpp.o"
  "CMakeFiles/common_test.dir/common/string_util_test.cpp.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
