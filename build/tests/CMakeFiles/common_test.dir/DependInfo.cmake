
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/csv_test.cpp" "tests/CMakeFiles/common_test.dir/common/csv_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/csv_test.cpp.o.d"
  "/root/repo/tests/common/parallel_test.cpp" "tests/CMakeFiles/common_test.dir/common/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/parallel_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/string_util_test.cpp" "tests/CMakeFiles/common_test.dir/common/string_util_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/string_util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flashgen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/flashgen_models.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/flashgen_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/flashgen_data.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/flashgen_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/flashgen_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/flashgen_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/flashgen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flashgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
