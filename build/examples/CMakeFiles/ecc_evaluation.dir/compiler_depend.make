# Empty compiler generated dependencies file for ecc_evaluation.
# This may be replaced when dependencies are built.
