file(REMOVE_RECURSE
  "CMakeFiles/ecc_evaluation.dir/ecc_evaluation.cpp.o"
  "CMakeFiles/ecc_evaluation.dir/ecc_evaluation.cpp.o.d"
  "ecc_evaluation"
  "ecc_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
