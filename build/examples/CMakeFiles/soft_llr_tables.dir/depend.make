# Empty dependencies file for soft_llr_tables.
# This may be replaced when dependencies are built.
