file(REMOVE_RECURSE
  "CMakeFiles/soft_llr_tables.dir/soft_llr_tables.cpp.o"
  "CMakeFiles/soft_llr_tables.dir/soft_llr_tables.cpp.o.d"
  "soft_llr_tables"
  "soft_llr_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_llr_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
