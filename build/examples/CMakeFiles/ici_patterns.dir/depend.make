# Empty dependencies file for ici_patterns.
# This may be replaced when dependencies are built.
