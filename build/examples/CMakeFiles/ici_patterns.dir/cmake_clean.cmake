file(REMOVE_RECURSE
  "CMakeFiles/ici_patterns.dir/ici_patterns.cpp.o"
  "CMakeFiles/ici_patterns.dir/ici_patterns.cpp.o.d"
  "ici_patterns"
  "ici_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
