file(REMOVE_RECURSE
  "CMakeFiles/model_probe.dir/model_probe.cpp.o"
  "CMakeFiles/model_probe.dir/model_probe.cpp.o.d"
  "model_probe"
  "model_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
