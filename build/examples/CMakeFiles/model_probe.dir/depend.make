# Empty dependencies file for model_probe.
# This may be replaced when dependencies are built.
