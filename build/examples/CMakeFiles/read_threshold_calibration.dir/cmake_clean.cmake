file(REMOVE_RECURSE
  "CMakeFiles/read_threshold_calibration.dir/read_threshold_calibration.cpp.o"
  "CMakeFiles/read_threshold_calibration.dir/read_threshold_calibration.cpp.o.d"
  "read_threshold_calibration"
  "read_threshold_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_threshold_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
