# Empty dependencies file for read_threshold_calibration.
# This may be replaced when dependencies are built.
